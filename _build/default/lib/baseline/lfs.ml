open Hare_sim
open Hare_proto
open Hare_proto.Types
module Path = Hare_client.Path

let bs = Hare_mem.Layout.block_size

type node = {
  id : int;
  ftype : ftype;
  mutable size : int;
  mutable blocks : int array;
  mutable nlink : int;
  mutable open_count : int;
  mutable unlinked : bool;
  children : (string, node) Hashtbl.t;
  lock : Slock.t;
}

type t = {
  engine : Engine.t;
  costs : Hare_config.Costs.t;
  dram : Hare_mem.Dram.t;
  free : int Queue.t;
  alloc_lock : Slock.t;
  block_home : int array;  (* socket that first touched each block *)
  cores : Core_res.t array;
  pcaches : Hare_mem.Pcache.t array;
  root : node;
  mutable next_id : int;
  ops : Hare_stats.Opcount.t;
}

(* Per-operation CPU work of the in-kernel VFS + tmpfs code paths, in
   cycles. Calibrated so single-core Hare lands at roughly 0.4x of Linux
   (Figure 8: median 0.39x). *)
let c_lookup_component = 250

let c_open = 900

let c_create_work = 2000

let c_unlink_work = 1000

let c_rename_work = 1500

let c_mkdir_work = 2500

let c_rmdir_work = 2000

let c_stat = 500

let c_rw_base = 400

let c_readdir_base = 400

let c_readdir_entry = 40

let mk_node t ftype =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  {
    id;
    ftype;
    size = 0;
    blocks = [||];
    nlink = 1;
    open_count = 0;
    unlinked = false;
    children = Hashtbl.create 8;
    lock = Slock.create ~name:(Printf.sprintf "inode-%d" id);
  }

let create ~engine ~config ~cores =
  let costs = config.Hare_config.Config.costs in
  let nblocks = config.Hare_config.Config.buffer_cache_blocks in
  let dram = Hare_mem.Dram.create ~nblocks in
  let free = Queue.create () in
  for b = 0 to nblocks - 1 do
    Queue.push b free
  done;
  let block_home = Array.make nblocks 0 in
  let block_socket b = block_home.(b) in
  let pcaches =
    Array.map
      (fun core ->
        Hare_mem.Pcache.create ~block_socket dram ~core ~costs
          ~capacity_lines:config.Hare_config.Config.pcache_lines)
      cores
  in
  let root =
    {
      id = 0;
      ftype = Dir;
      size = 0;
      blocks = [||];
      nlink = 1;
      open_count = 0;
      unlinked = false;
      children = Hashtbl.create 8;
      lock = Slock.create ~name:"inode-0";
    }
  in
  {
    engine;
    costs;
    dram;
    free;
    alloc_lock = Slock.create ~name:"alloc";
    block_home;
    cores;
    pcaches;
    root;
    next_id = 1;
    ops = Hare_stats.Opcount.create ();
  }

let root t = t.root

let node_ftype n = n.ftype

let size n = n.size

let syscalls t = t.ops

let node_attr _t n =
  {
    a_ino = { server = 0; ino = n.id };
    a_ftype = n.ftype;
    a_size = n.size;
    a_nlink = n.nlink;
    a_dist = false;
  }

let core t core = t.cores.(core)

let syscall t ~core:c name extra =
  Hare_stats.Opcount.incr t.ops name;
  Core_res.compute (core t c) (t.costs.linux_syscall + extra)

(* ---------- block allocation (global lock, first-touch NUMA) ---------- *)

let alloc_blocks t ~core:c n =
  Slock.acquire t.alloc_lock ~core:(core t c) ~cost:t.costs.linux_lock;
  Core_res.compute (core t c) (100 * n);
  let out =
    if Queue.length t.free < n then None
    else
      Some
        (Array.init n (fun _ ->
             let b = Queue.pop t.free in
             t.block_home.(b) <- Core_res.socket (core t c);
             Hare_mem.Dram.zero_block t.dram ~block:b;
             b))
  in
  Slock.release t.alloc_lock;
  match out with None -> Errno.raise_errno Errno.ENOSPC "alloc" | Some a -> a

let free_blocks t blocks = Array.iter (fun b -> Queue.push b t.free) blocks

let ensure_blocks t ~core node ~sz =
  let need = if sz <= 0 then 0 else ((sz - 1) / bs) + 1 in
  let have = Array.length node.blocks in
  if need > have then
    node.blocks <- Array.append node.blocks (alloc_blocks t ~core (need - have))

(* ---------- path resolution ------------------------------------------- *)

let lookup_child t ~core:c dir name =
  Core_res.compute (core t c) c_lookup_component;
  match Hashtbl.find_opt dir.children name with
  | Some n -> n
  | None -> Errno.raise_errno Errno.ENOENT name

let resolve_comps t ~core comps =
  List.fold_left
    (fun dir comp ->
      if dir.ftype <> Dir then Errno.raise_errno Errno.ENOTDIR comp
      else lookup_child t ~core dir comp)
    t.root comps

let resolve t ~core ~cwd path =
  resolve_comps t ~core (Path.normalize ~cwd path)

let resolve_parent t ~core ~cwd path =
  let comps = Path.normalize ~cwd path in
  let parent_comps, name = Path.parent_and_name comps in
  let parent = resolve_comps t ~core parent_comps in
  if parent.ftype <> Dir then Errno.raise_errno Errno.ENOTDIR path;
  (parent, name)

(* ---------- data path -------------------------------------------------- *)

let copy_out t ~core node ~off ~len =
  let len = max 0 (min len (node.size - off)) in
  if len = 0 then ""
  else begin
    let out = Bytes.create len in
    let pos = ref 0 in
    while !pos < len do
      let foff = off + !pos in
      let bi = foff / bs and boff = foff mod bs in
      let n = min (len - !pos) (bs - boff) in
      Hare_mem.Pcache.read_coherent t.pcaches.(core) ~block:node.blocks.(bi)
        ~off:boff ~len:n ~dst:out ~dst_off:!pos;
      pos := !pos + n
    done;
    Bytes.unsafe_to_string out
  end

let copy_in t ~core node ~off data =
  let len = String.length data in
  ensure_blocks t ~core node ~sz:(off + len);
  let src = Bytes.unsafe_of_string data in
  let pos = ref 0 in
  while !pos < len do
    let foff = off + !pos in
    let bi = foff / bs and boff = foff mod bs in
    let n = min (len - !pos) (bs - boff) in
    Hare_mem.Pcache.write_coherent t.pcaches.(core) ~block:node.blocks.(bi)
      ~off:boff ~len:n ~src ~src_off:!pos;
    pos := !pos + n
  done;
  if off + len > node.size then node.size <- off + len;
  len

(* ---------- operations ------------------------------------------------- *)

let maybe_free t node =
  if node.unlinked && node.open_count = 0 && node.nlink <= 0 then begin
    free_blocks t node.blocks;
    node.blocks <- [||]
  end

let do_truncate t ~core:c node ~sz =
  if sz < node.size then begin
    let keep = if sz <= 0 then 0 else ((sz - 1) / bs) + 1 in
    let have = Array.length node.blocks in
    if keep < have then begin
      free_blocks t (Array.sub node.blocks keep (have - keep));
      node.blocks <- Array.sub node.blocks 0 keep
    end;
    (if keep > 0 then
       let tail = sz mod bs in
       if tail > 0 then
         Hare_mem.Dram.zero_range t.dram ~block:node.blocks.(keep - 1) ~off:tail
           ~len:(bs - tail));
    node.size <- sz
  end
  else if sz > node.size then begin
    ensure_blocks t ~core:c node ~sz;
    node.size <- sz
  end

let open_file t ~core:c ~cwd path (flags : open_flags) =
  syscall t ~core:c "open" c_open;
  let parent, name = resolve_parent t ~core:c ~cwd path in
  let node =
    match Hashtbl.find_opt parent.children name with
    | Some n ->
        Core_res.compute (core t c) c_lookup_component;
        if flags.excl && flags.creat then Errno.raise_errno Errno.EEXIST name;
        if n.ftype = Dir then Errno.raise_errno Errno.EISDIR name;
        n
    | None ->
        if not flags.creat then Errno.raise_errno Errno.ENOENT name;
        (* Serialize creates in one directory on its lock (the Linux
           bottleneck the paper contrasts with directory distribution). *)
        Slock.acquire parent.lock ~core:(core t c) ~cost:t.costs.linux_lock;
        Core_res.compute (core t c) (t.costs.linux_dirlock_hold + c_create_work);
        let n =
          match Hashtbl.find_opt parent.children name with
          | Some existing -> existing (* lost the race *)
          | None ->
              let n = mk_node t Reg in
              Hashtbl.replace parent.children name n;
              n
        in
        Slock.release parent.lock;
        n
  in
  if flags.trunc then do_truncate t ~core:c node ~sz:0;
  node.open_count <- node.open_count + 1;
  node

let close_file t ~core:c node =
  syscall t ~core:c "close" 200;
  node.open_count <- node.open_count - 1;
  maybe_free t node

let read_file t ~core:c node ~off ~len =
  syscall t ~core:c "read" c_rw_base;
  copy_out t ~core:c node ~off ~len

let write_file t ~core:c node ~off data =
  syscall t ~core:c "write" c_rw_base;
  (* Writers serialize on the inode lock while copying. *)
  Slock.acquire node.lock ~core:(core t c) ~cost:t.costs.linux_lock;
  let n = copy_in t ~core:c node ~off data in
  Slock.release node.lock;
  n

let truncate t ~core:c node ~size =
  syscall t ~core:c "ftruncate" 600;
  Slock.acquire node.lock ~core:(core t c) ~cost:t.costs.linux_lock;
  do_truncate t ~core:c node ~sz:size;
  Slock.release node.lock

let fsync_file t ~core:c _node = syscall t ~core:c "fsync" 400

let unlink t ~core:c ~cwd path =
  syscall t ~core:c "unlink" 0;
  let parent, name = resolve_parent t ~core:c ~cwd path in
  Slock.acquire parent.lock ~core:(core t c) ~cost:t.costs.linux_lock;
  Core_res.compute (core t c) (t.costs.linux_dirlock_hold + c_unlink_work);
  let result =
    match Hashtbl.find_opt parent.children name with
    | None -> Error Errno.ENOENT
    | Some n when n.ftype = Dir -> Error Errno.EISDIR
    | Some n ->
        Hashtbl.remove parent.children name;
        n.nlink <- n.nlink - 1;
        if n.nlink <= 0 then n.unlinked <- true;
        Ok n
  in
  Slock.release parent.lock;
  match result with
  | Ok n -> maybe_free t n
  | Error e -> Errno.raise_errno e name

let mkdir t ~core:c ~cwd path =
  syscall t ~core:c "mkdir" 0;
  let parent, name = resolve_parent t ~core:c ~cwd path in
  Slock.acquire parent.lock ~core:(core t c) ~cost:t.costs.linux_lock;
  Core_res.compute (core t c) (t.costs.linux_dirlock_hold + c_mkdir_work);
  let result =
    if Hashtbl.mem parent.children name then Error Errno.EEXIST
    else begin
      Hashtbl.replace parent.children name (mk_node t Dir);
      Ok ()
    end
  in
  Slock.release parent.lock;
  match result with Ok () -> () | Error e -> Errno.raise_errno e name

let rmdir t ~core:c ~cwd path =
  syscall t ~core:c "rmdir" 0;
  let parent, name = resolve_parent t ~core:c ~cwd path in
  Slock.acquire parent.lock ~core:(core t c) ~cost:t.costs.linux_lock;
  Core_res.compute (core t c) (t.costs.linux_dirlock_hold + c_rmdir_work);
  let result =
    match Hashtbl.find_opt parent.children name with
    | None -> Error Errno.ENOENT
    | Some n when n.ftype <> Dir -> Error Errno.ENOTDIR
    | Some n when Hashtbl.length n.children > 0 -> Error Errno.ENOTEMPTY
    | Some _ ->
        Hashtbl.remove parent.children name;
        Ok ()
  in
  Slock.release parent.lock;
  match result with Ok () -> () | Error e -> Errno.raise_errno e name

let rename t ~core:c ~cwd oldp newp =
  syscall t ~core:c "rename" 0;
  let oparent, oname = resolve_parent t ~core:c ~cwd oldp in
  let nparent, nname = resolve_parent t ~core:c ~cwd newp in
  if oparent == nparent && oname = nname then ()
  else begin
    (* Lock ordering by inode id, as the kernel does. *)
    let first, second =
      if oparent == nparent then (oparent, None)
      else if oparent.id < nparent.id then (oparent, Some nparent)
      else (nparent, Some oparent)
    in
    Slock.acquire first.lock ~core:(core t c) ~cost:t.costs.linux_lock;
    (match second with
    | Some s -> Slock.acquire s.lock ~core:(core t c) ~cost:t.costs.linux_lock
    | None -> ());
    Core_res.compute (core t c) (t.costs.linux_dirlock_hold + c_rename_work);
    let result =
      match Hashtbl.find_opt oparent.children oname with
      | None -> Error Errno.ENOENT
      | Some n -> (
          match Hashtbl.find_opt nparent.children nname with
          | Some victim when victim.ftype = Dir -> Error Errno.EISDIR
          | Some _ when n.ftype = Dir ->
              (* directory over an existing file: POSIX says ENOTDIR *)
              Error Errno.ENOTDIR
          | victim ->
              Hashtbl.remove oparent.children oname;
              Hashtbl.replace nparent.children nname n;
              (match victim with
              | Some v when v != n ->
                  v.nlink <- v.nlink - 1;
                  if v.nlink <= 0 then v.unlinked <- true;
                  maybe_free t v
              | _ -> ());
              Ok ())
    in
    (match second with Some s -> Slock.release s.lock | None -> ());
    Slock.release first.lock;
    match result with Ok () -> () | Error e -> Errno.raise_errno e oldp
  end

let readdir t ~core:c ~cwd path =
  let dir = resolve t ~core:c ~cwd path in
  if dir.ftype <> Dir then Errno.raise_errno Errno.ENOTDIR path;
  syscall t ~core:c "readdir"
    (c_readdir_base + (c_readdir_entry * Hashtbl.length dir.children));
  Slock.acquire dir.lock ~core:(core t c) ~cost:t.costs.linux_lock;
  let out =
    Hashtbl.fold (fun name n acc -> (name, n.ftype) :: acc) dir.children []
  in
  Slock.release dir.lock;
  out

let stat t ~core:c ~cwd path =
  syscall t ~core:c "stat" c_stat;
  node_attr t (resolve t ~core:c ~cwd path)
