lib/baseline/slock.ml: Core_res Engine Hare_sim Queue
