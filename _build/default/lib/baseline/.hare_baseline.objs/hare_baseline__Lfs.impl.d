lib/baseline/lfs.ml: Array Bytes Core_res Engine Errno Hare_client Hare_config Hare_mem Hare_proto Hare_sim Hare_stats Hashtbl List Printf Queue Slock String
