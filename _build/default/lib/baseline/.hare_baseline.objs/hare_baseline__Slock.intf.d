lib/baseline/slock.mli: Hare_sim
