lib/baseline/lfs.mli: Hare_config Hare_proto Hare_sim Hare_stats Types
