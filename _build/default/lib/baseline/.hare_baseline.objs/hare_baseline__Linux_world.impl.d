lib/baseline/linux_world.ml: Array Bqueue Buffer Core_res Engine Errno Hare_api Hare_client Hare_config Hare_proto Hare_server Hare_sim Hashtbl Ivar Lfs List Printf Rng String Types
