lib/baseline/linux_world.mli: Buffer Hare_api Hare_config Hare_stats Lfs
