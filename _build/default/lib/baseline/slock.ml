open Hare_sim

type t = {
  name : string;
  mutable held : bool;
  waiters : Engine.waker Queue.t;
  mutable contended : int;
}

let create ~name = { name; held = false; waiters = Queue.create (); contended = 0 }

let acquire t ~core ~cost =
  if t.held then begin
    t.contended <- t.contended + 1;
    Engine.suspend (fun waker -> Queue.push waker t.waiters)
    (* The releaser hands the lock over before waking us. *)
  end
  else t.held <- true;
  Core_res.compute core cost

let release t =
  if not t.held then invalid_arg ("Slock.release: " ^ t.name ^ " not held");
  match Queue.take_opt t.waiters with
  | Some waker -> waker () (* ownership passes directly; stays held *)
  | None -> t.held <- false

let hold t ~core ~cost ~work =
  acquire t ~core ~cost;
  if work > 0 then Core_res.compute core work;
  release t

let contended t = t.contended
