(** Simulated kernel lock for the shared-memory (Linux) baseline.

    On a cache-coherent machine the kernel serializes directory and inode
    updates with locks; contention on them is what limits the Linux
    columns of Figure 15. Acquisition charges a small cost; the caller
    holds the lock across its own simulated compute, so queueing delay
    emerges naturally. *)

type t

val create : name:string -> t

(** [acquire t ~core] blocks until the lock is free, charging the
    acquisition cost to [core]. *)
val acquire : t -> core:Hare_sim.Core_res.t -> cost:int -> unit

val release : t -> unit

(** [hold t ~core ~cost ~work] = acquire; compute [work] cycles; release. *)
val hold : t -> core:Hare_sim.Core_res.t -> cost:int -> work:int -> unit

val contended : t -> int
(** Number of acquisitions that had to wait. *)
