(** Shared-memory in-memory file system — the Linux tmpfs/ramfs
    comparator of §5.3.3 and §5.5.

    Runs on the same simulated machine but {e with} hardware coherence
    (all data moves through {!Hare_mem.Pcache.read_coherent} /
    [write_coherent]) and no messaging: one shared object graph, guarded
    by per-directory and per-inode kernel locks whose hold times are what
    limit scalability for concurrent operations in one directory. *)

open Hare_proto

type node

type t

val create :
  engine:Hare_sim.Engine.t ->
  config:Hare_config.Config.t ->
  cores:Hare_sim.Core_res.t array ->
  t

val root : t -> node

val node_ftype : node -> Types.ftype

val node_attr : t -> node -> Types.attr

(** All operations take the calling core (costs and data movement are
    charged there) and a cwd string for relative paths; they raise
    [Errno.Error] like the real calls. *)

val resolve : t -> core:int -> cwd:string -> string -> node

val open_file :
  t -> core:int -> cwd:string -> string -> Types.open_flags -> node

val close_file : t -> core:int -> node -> unit

val read_file : t -> core:int -> node -> off:int -> len:int -> string

val write_file : t -> core:int -> node -> off:int -> string -> int

val truncate : t -> core:int -> node -> size:int -> unit

val fsync_file : t -> core:int -> node -> unit

val unlink : t -> core:int -> cwd:string -> string -> unit

val mkdir : t -> core:int -> cwd:string -> string -> unit

val rmdir : t -> core:int -> cwd:string -> string -> unit

val rename : t -> core:int -> cwd:string -> string -> string -> unit

val readdir : t -> core:int -> cwd:string -> string -> (string * Types.ftype) list

val stat : t -> core:int -> cwd:string -> string -> Types.attr

val size : node -> int

val syscalls : t -> Hare_stats.Opcount.t
