(** The shared-memory Linux baseline as a runnable world.

    Combines {!Lfs} (tmpfs/ramfs) with a Linux-style process model:
    fork may place the child on any core (the kernel scheduler balances),
    descriptors are shared kernel objects (no RPCs, no proxies), pipes
    are kernel buffers. Implements the same {!Hare_api.Api.t} surface as
    the Hare stack so every benchmark runs unmodified on both — which is
    exactly the comparison the paper makes (§5.3.3, §5.5). *)

type t

type proc

val boot : Hare_config.Config.t -> t

val api : t -> proc Hare_api.Api.t

val spawn_init : t -> name:string -> (proc -> int) -> proc * Buffer.t

val run : t -> unit

val run_for : t -> int64 -> unit

val seconds : t -> float

val exit_status : t -> proc -> int option

val fs : t -> Lfs.t

val syscalls : t -> Hare_stats.Opcount.t

val exit_proc : proc -> int -> 'a
(** Emulates [exit(2)] from inside a process body. *)
