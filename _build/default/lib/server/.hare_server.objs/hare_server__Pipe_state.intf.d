lib/server/pipe_state.mli: Hare_proto
