lib/server/blocklist.mli:
