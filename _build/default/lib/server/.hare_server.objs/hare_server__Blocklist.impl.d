lib/server/blocklist.ml: Array Hashtbl Option Printf Queue
