lib/server/pipe_state.ml: Buffer Hare_proto Queue String
