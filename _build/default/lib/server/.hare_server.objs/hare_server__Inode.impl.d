lib/server/inode.ml: Hare_mem Hare_proto Pipe_state
