lib/server/inode.mli: Hare_proto Pipe_state
