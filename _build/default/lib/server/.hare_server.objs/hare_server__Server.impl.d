lib/server/server.ml: Array Blocklist Bytes Core_res Engine Errno Hare_config Hare_mem Hare_msg Hare_proto Hare_sim Hare_stats Hashtbl Inode List Logs Option Pipe_state Printf Queue String Wire
