lib/server/server.mli: Hare_config Hare_mem Hare_msg Hare_proto Hare_sim Hare_stats
