let render ~headers rows =
  let ncols = List.length headers in
  List.iteri
    (fun i row ->
      if List.length row <> ncols then
        invalid_arg (Printf.sprintf "Table.render: row %d has wrong arity" i))
    rows;
  let all = headers :: rows in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun c cell ->
         widths.(c) <- max widths.(c) (String.length cell)))
    all;
  let buf = Buffer.create 1024 in
  let emit_row row =
    List.iteri
      (fun c cell ->
        if c > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if c < ncols - 1 then
          Buffer.add_string buf (String.make (widths.(c) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row headers;
  let rule = List.init ncols (fun c -> String.make widths.(c) '-') in
  emit_row rule;
  List.iter emit_row rows;
  Buffer.contents buf

let print ~headers rows = print_string (render ~headers rows)

let fmt_factor x = Printf.sprintf "%.2fx" x

let fmt_seconds s = Printf.sprintf "%.2fs" s
