type t = { min : float; avg : float; median : float; max : float }

let of_list xs =
  match xs with
  | [] -> invalid_arg "Summary.of_list: empty"
  | _ ->
      let arr = Array.of_list xs in
      Array.sort compare arr;
      let n = Array.length arr in
      let median =
        if n mod 2 = 1 then arr.(n / 2)
        else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0
      in
      {
        min = arr.(0);
        avg = Array.fold_left ( +. ) 0.0 arr /. float_of_int n;
        median;
        max = arr.(n - 1);
      }

let pp_factor ppf t =
  Format.fprintf ppf "%.2fx %.2fx %.2fx %.2fx" t.min t.avg t.median t.max
