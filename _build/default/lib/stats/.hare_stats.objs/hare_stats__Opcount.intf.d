lib/stats/opcount.mli: Format
