lib/stats/sloc.ml: Array Filename String Sys
