lib/stats/summary.ml: Array Format
