lib/stats/sloc.mli:
