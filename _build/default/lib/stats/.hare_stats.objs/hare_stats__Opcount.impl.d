lib/stats/opcount.ml: Format Hashtbl List
