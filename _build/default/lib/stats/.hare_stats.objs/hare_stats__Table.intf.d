lib/stats/table.mli:
