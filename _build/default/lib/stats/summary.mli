(** Min/avg/median/max summaries (Figure 9's aggregation). *)

type t = { min : float; avg : float; median : float; max : float }

(** [of_list xs] summarizes a non-empty list.
    Raises [Invalid_argument] on an empty list. *)
val of_list : float list -> t

(** [pp_factor] renders like the paper: ["0.97x 1.93x 1.37x 5.50x"]. *)
val pp_factor : Format.formatter -> t -> unit
