(** Plain-text tables, for printing the paper's figures as rows. *)

(** [render ~headers rows] lays out an aligned ASCII table. All rows must
    have [List.length headers] cells. *)
val render : headers:string list -> string list list -> string

val print : headers:string list -> string list list -> unit

(** [fmt_factor x] renders a normalized throughput like the paper's bar
    labels: ["4.12x"]. *)
val fmt_factor : float -> string

(** [fmt_seconds s] renders a runtime: ["42.24s"]. *)
val fmt_seconds : float -> string
