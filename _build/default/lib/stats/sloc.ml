let count_file path =
  match open_in path with
  | exception Sys_error _ -> 0
  | ic ->
      let n = ref 0 in
      (try
         while true do
           if String.trim (input_line ic) <> "" then incr n
         done
       with End_of_file -> ());
      close_in ic;
      !n

let is_source name =
  Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"

let rec count_tree dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | entries ->
      Array.fold_left
        (fun acc name ->
          let path = Filename.concat dir name in
          if Sys.is_directory path then acc + count_tree path
          else if is_source name then acc + count_file path
          else acc)
        0 entries

let repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())
