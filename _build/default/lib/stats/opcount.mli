(** Named operation counters (system calls, RPC opcodes).

    Backs the Figure 5 operation-breakdown table and the per-benchmark
    RPC accounting. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit

val get : t -> string -> int

val total : t -> int

(** [to_list t] returns [(name, count)] pairs, highest count first;
    ties alphabetical. *)
val to_list : t -> (string * int) list

(** [breakdown t] returns [(name, share)] with shares in [0,1], highest
    first. *)
val breakdown : t -> (string * float) list

(** [merge ~into src] adds [src]'s counts into [into]. *)
val merge : into:t -> t -> unit

(** [snapshot t] is an independent copy. *)
val snapshot : t -> t

(** [diff ~since t] is the counts accumulated after [since] was
    snapshotted from the same counter. *)
val diff : since:t -> t -> t

val clear : t -> unit

val pp : Format.formatter -> t -> unit
