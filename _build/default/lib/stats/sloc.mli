(** Source-line counting for the Figure 4 component-size table. *)

val count_file : string -> int
(** Non-blank source lines of one file; 0 if unreadable. *)

val count_tree : string -> int
(** Sum over all [.ml]/[.mli] files under a directory (recursively). *)

val repo_root : unit -> string option
(** Nearest ancestor of the current directory containing
    [dune-project]. *)
