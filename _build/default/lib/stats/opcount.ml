type t = (string, int ref) Hashtbl.t

let create () = Hashtbl.create 32

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t name (ref by)

let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let total t = Hashtbl.fold (fun _ r acc -> acc + !r) t 0

let to_list t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
  |> List.sort (fun (n1, c1) (n2, c2) ->
         match compare c2 c1 with 0 -> compare n1 n2 | c -> c)

let breakdown t =
  let sum = total t in
  if sum = 0 then []
  else
    to_list t
    |> List.map (fun (name, c) -> (name, float_of_int c /. float_of_int sum))

let merge ~into src =
  Hashtbl.iter (fun name r -> incr ~by:!r into name) src

let snapshot t =
  let copy = create () in
  merge ~into:copy t;
  copy

let diff ~since t =
  let out = create () in
  Hashtbl.iter
    (fun name r ->
      let before = get since name in
      if !r - before > 0 then incr ~by:(!r - before) out name)
    t;
  out

let clear t = Hashtbl.reset t

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iter
    (fun (name, c) -> Format.fprintf ppf "%-14s %8d@," name c)
    (to_list t);
  Format.pp_close_box ppf ()
