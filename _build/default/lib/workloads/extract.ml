(* extract: decompressing an archive of the (scaled) kernel tree. Each
   worker pipes its slice of the archive through a decompressor child —
   the pipe-and-create idiom of tar xzf (§5.2) — and materializes the
   files. Parallelization by slicing the archive across workers is our
   substitute for the paper's single tar invocation. *)

module Api = Hare_api.Api
open Hare_proto

let archive = "/linux.tar"

let name_width = 32

let size_width = 8

let entry_bytes = 2048

let entries ~scale = 48 * scale

(* Fixed-size record framing: name (padded) + decimal size + data. *)
let frame name data =
  let padded = Printf.sprintf "%-*s" name_width name in
  assert (String.length padded = name_width);
  Printf.sprintf "%s%0*d%s" padded size_width (String.length data) data

let setup (api : 'p Api.t) p ~nprocs:_ ~scale =
  let fd = api.Api.openf p archive Types.flags_w in
  for i = 0 to entries ~scale - 1 do
    let name = Printf.sprintf "d%02d/f%04d" (i mod 12) i in
    ignore (api.Api.write p fd (frame name (Tree.file_data entry_bytes i)))
  done;
  api.Api.close p fd;
  api.Api.mkdir p ~dist:false "/extract"

let record_len = name_width + size_width + entry_bytes

(* Child: stream our byte range of the archive into the pipe. *)
let pump (api : 'p Api.t) p ~wfd ~first ~count =
  let fd = api.Api.openf p archive Types.flags_r in
  ignore (api.Api.lseek p fd ~pos:(first * record_len) Types.Seek_set);
  let remaining = ref (count * record_len) in
  while !remaining > 0 do
    let chunk = api.Api.read p fd ~len:(min 8192 !remaining) in
    if chunk = "" then remaining := 0
    else begin
      Api.write_all api p wfd chunk;
      remaining := !remaining - String.length chunk
    end
  done;
  api.Api.close p fd

let read_exact (api : 'p Api.t) p fd n =
  let buf = Buffer.create n in
  let rec go () =
    let want = n - Buffer.length buf in
    if want > 0 then begin
      let s = api.Api.read p fd ~len:want in
      if s = "" then Errno.raise_errno Errno.EINVAL "short archive"
      else begin
        Buffer.add_string buf s;
        go ()
      end
    end
  in
  go ();
  Buffer.contents buf

let worker (api : 'p Api.t) p ~idx ~nprocs ~scale =
  let total = entries ~scale in
  let per = (total + nprocs - 1) / nprocs in
  let first = idx * per in
  let count = max 0 (min per (total - first)) in
  if count > 0 then begin
    let out_root = Printf.sprintf "/extract/w%d" idx in
    api.Api.mkdir p ~dist:false out_root;
    let rfd, wfd = api.Api.pipe p in
    let pid = api.Api.fork p (fun c ->
        pump api c ~wfd ~first ~count;
        api.Api.close c wfd;
        api.Api.close c rfd;
        0)
    in
    api.Api.close p wfd;
    let made_dirs = Hashtbl.create 8 in
    for _ = 1 to count do
      let header = read_exact api p rfd (name_width + size_width) in
      let name = String.trim (String.sub header 0 name_width) in
      let size = int_of_string (String.sub header name_width size_width) in
      let data = read_exact api p rfd size in
      (* "decompress" the entry *)
      api.Api.compute p (3 * size);
      (match String.index_opt name '/' with
      | Some slash ->
          let d = String.sub name 0 slash in
          if not (Hashtbl.mem made_dirs d) then begin
            Hashtbl.replace made_dirs d ();
            api.Api.mkdir p ~dist:false (out_root ^ "/" ^ d)
          end
      | None -> ());
      let path = out_root ^ "/" ^ name in
      let fd = api.Api.openf p path Types.flags_w in
      Api.write_all api p fd data;
      api.Api.close p fd
    done;
    api.Api.close p rfd;
    ignore (api.Api.waitpid p pid)
  end

let spec : Spec.t =
  {
    name = "extract";
    mode = Spec.Workers;
    exec_policy = Hare_config.Config.Round_robin;
    uses_dist = false;
    setup;
    worker;
    programs = Spec.no_programs;
    ops = (fun ~nprocs:_ ~scale -> entries ~scale);
  }
