(** The pfind dense / pfind sparse benchmarks (§5.2): parallel find over
    a shared tree. *)

val dense : Spec.t

val sparse : Spec.t
