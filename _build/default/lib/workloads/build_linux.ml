(* build linux: a make -j style parallel build of a synthetic kernel
   tree. One make process coordinates a jobserver token pipe (shared
   with every compiler child — the descriptor-sharing idiom that rules
   out plain NFS, §1/§5.2), spawns a cc per object via remote exec, and
   finally links. cc reads sources and headers, burns compile cycles,
   writes obj.tmp and renames it into place. *)

module Api = Hare_api.Api
open Hare_proto

let src_root = "/src"

let ndirs = 8

let files_per ~scale = 10 * scale

let hdr_count = 6

let hdr_bytes = 1024

let c_bytes = 2048

(* A real cc invocation on a kernel source file costs on the order of a
   hundred milliseconds; the fixed part dominates for our small files. *)
let compile_fixed_cycles = 1_000_000

let compile_cycles_per_byte = 400

let link_fixed_cycles = 500_000

let link_cycles_per_byte = 50

let objects ~scale =
  List.concat
    (List.init ndirs (fun d ->
         List.init (files_per ~scale) (fun f ->
             ( Printf.sprintf "%s/d%d/f%03d.c" src_root d f,
               Printf.sprintf "%s/d%d/f%03d.o" src_root d f ))))

let setup (api : 'p Api.t) p ~nprocs:_ ~scale =
  api.Api.mkdir p ~dist:true src_root;
  api.Api.mkdir p ~dist:false (src_root ^ "/include");
  for h = 0 to hdr_count - 1 do
    let fd =
      api.Api.openf p
        (Printf.sprintf "%s/include/h%d.h" src_root h)
        Types.flags_w
    in
    Api.write_all api p fd (Tree.file_data hdr_bytes h);
    api.Api.close p fd
  done;
  for d = 0 to ndirs - 1 do
    api.Api.mkdir p ~dist:true (Printf.sprintf "%s/d%d" src_root d)
  done;
  List.iter
    (fun (src, _obj) ->
      let fd = api.Api.openf p src Types.flags_w in
      Api.write_all api p fd (Tree.file_data c_bytes (Hashtbl.hash src));
      api.Api.close p fd)
    (objects ~scale);
  (* the "Makefile" make reads at startup *)
  let fd = api.Api.openf p (src_root ^ "/Makefile") Types.flags_w in
  Api.write_all api p fd (Tree.file_data 1500 7);
  api.Api.close p fd

let cc_prog (api : 'p Api.t) p args =
  match args with
  | [ src; obj; rfd_s; wfd_s ] ->
      let rfd = int_of_string rfd_s and wfd = int_of_string wfd_s in
      (* jobserver: take a token before compiling *)
      let token = api.Api.read p rfd ~len:1 in
      if token = "" then 1
      else begin
        let bytes = ref 0 in
        let slurp path =
          let fd = api.Api.openf p path Types.flags_r in
          let s = Api.read_to_eof api p fd in
          api.Api.close p fd;
          bytes := !bytes + String.length s
        in
        slurp src;
        let h = Hashtbl.hash src in
        for k = 0 to 2 do
          slurp (Printf.sprintf "%s/include/h%d.h" src_root ((h + k) mod hdr_count))
        done;
        api.Api.compute p (compile_fixed_cycles + (compile_cycles_per_byte * !bytes));
        let tmp = obj ^ ".tmp" in
        let fd = api.Api.openf p tmp Types.flags_w in
        Api.write_all api p fd (Tree.file_data (c_bytes / 2) h);
        api.Api.close p fd;
        api.Api.rename p tmp obj;
        (* return the token *)
        ignore (api.Api.write p wfd token);
        0
      end
  | _ -> 2

let ld_prog (api : 'p Api.t) p _args =
  let bytes = ref 0 in
  for d = 0 to ndirs - 1 do
    let dir = Printf.sprintf "%s/d%d" src_root d in
    List.iter
      (fun (name, ftype) ->
        if ftype = Types.Reg && Filename.check_suffix name ".o" then begin
          let fd = api.Api.openf p (dir ^ "/" ^ name) Types.flags_r in
          let s = Api.read_to_eof api p fd in
          api.Api.close p fd;
          bytes := !bytes + String.length s
        end)
      (api.Api.readdir p dir)
  done;
  api.Api.compute p (link_fixed_cycles + (link_cycles_per_byte * !bytes));
  let fd = api.Api.openf p (src_root ^ "/vmlinux") Types.flags_w in
  Api.write_all api p fd (Tree.file_data (min 4096 (!bytes / 4 + 1)) 9);
  api.Api.close p fd;
  0

let worker (api : 'p Api.t) p ~idx ~nprocs ~scale =
  if idx = 0 then begin
    let jobs = max 1 nprocs in
    (* make reads its Makefile and stats every prerequisite *)
    let fd = api.Api.openf p (src_root ^ "/Makefile") Types.flags_r in
    ignore (Api.read_to_eof api p fd);
    api.Api.close p fd;
    let objs = objects ~scale in
    List.iter (fun (src, _) -> ignore (api.Api.stat p src)) objs;
    (* jobserver pipe, preloaded with [jobs] tokens *)
    let rfd, wfd = api.Api.pipe p in
    Api.write_all api p wfd (String.make jobs 't');
    let pids =
      List.map
        (fun (src, obj) ->
          api.Api.spawn p ~prog:"cc"
            ~args:[ src; obj; string_of_int rfd; string_of_int wfd ])
        objs
    in
    let failed =
      List.fold_left
        (fun acc pid -> if api.Api.waitpid p pid <> 0 then acc + 1 else acc)
        0 pids
    in
    if failed > 0 then failwith "build: cc failed";
    let ld = api.Api.spawn p ~prog:"ld" ~args:[] in
    if api.Api.waitpid p ld <> 0 then failwith "build: ld failed";
    api.Api.close p rfd;
    api.Api.close p wfd;
    if not (api.Api.exists p (src_root ^ "/vmlinux")) then
      failwith "build: no vmlinux"
  end

let spec : Spec.t =
  {
    name = "build linux";
    mode = Spec.Make;
    exec_policy = Hare_config.Config.Random_placement;
    uses_dist = true;
    setup;
    worker;
    programs = (fun api -> [ ("cc", cc_prog api); ("ld", ld_prog api) ]);
    ops = (fun ~nprocs:_ ~scale -> List.length (objects ~scale) + 1);
  }
