module Api = Hare_api.Api
open Hare_proto

type params = {
  top : int;
  levels : int;
  dirs_per_level : int;
  files_per_level : int;
  file_bytes : int;
  dist : bool;
}

let dense ~scale =
  {
    top = 2;
    levels = 3;
    dirs_per_level = 5;
    files_per_level = 20 * scale;
    file_bytes = 1024;
    dist = true;
  }

let sparse ~scale =
  {
    top = 1;
    levels = 6 + scale;
    dirs_per_level = 2;
    files_per_level = 1;
    file_bytes = 256;
    dist = false;
  }

let count params =
  (* a top subtree has one directory per node of a [dirs_per_level]-ary
     tree with [levels] levels: sum of fanout^l for l in 0..levels-1 *)
  let rec sum l acc pow =
    if l = params.levels then acc
    else sum (l + 1) (acc + pow) (pow * params.dirs_per_level)
  in
  let dirs_per_top = sum 0 0 1 in
  let dirs = params.top * dirs_per_top in
  (dirs, dirs * params.files_per_level)

let dir_paths params ~root =
  let acc = ref [] in
  let rec go dir depth level =
    acc := (depth, dir) :: !acc;
    if level < params.levels then
      for d = 0 to params.dirs_per_level - 1 do
        go (Printf.sprintf "%s/d%d" dir d) (depth + 1) (level + 1)
      done
  in
  for t = 0 to params.top - 1 do
    go (Printf.sprintf "%s/top%d" root t) 1 1
  done;
  List.rev !acc

let file_paths params ~dir =
  List.init params.files_per_level (fun j -> Printf.sprintf "%s/f%04d" dir j)

let file_data n seed =
  String.init n (fun i -> Char.chr (33 + ((i + (seed * 131)) mod 94)))

let owner_of_path path ~parts = Hashtbl.hash path land 0x3FFFFFFF mod parts

let mk_file (api : 'p Api.t) p params dir j =
  let path = Printf.sprintf "%s/f%04d" dir j in
  let fd = api.Api.openf p path Types.flags_w in
  ignore (api.Api.write p fd (file_data params.file_bytes j));
  api.Api.close p fd

let build_dirs (api : 'p Api.t) p ~root params =
  List.iter
    (fun ((_ : int), d) -> api.Api.mkdir p ~dist:params.dist d)
    (dir_paths params ~root)

let fill_files (api : 'p Api.t) p ~root params ~part ~parts =
  List.iter
    (fun ((_ : int), d) ->
      if owner_of_path d ~parts = part then
        for j = 0 to params.files_per_level - 1 do
          mk_file api p params d j
        done)
    (dir_paths params ~root)

let build (api : 'p Api.t) p ~root params =
  let created = ref [] in
  let mk_file dir j =
    let path = Printf.sprintf "%s/f%04d" dir j in
    let fd = api.Api.openf p path Types.flags_w in
    ignore (api.Api.write p fd (file_data params.file_bytes j));
    api.Api.close p fd
  in
  (* [spread]: populate one directory and recurse [levels] deeper. *)
  let rec spread dir level =
    created := dir :: !created;
    for j = 0 to params.files_per_level - 1 do
      mk_file dir j
    done;
    if level < params.levels then
      for d = 0 to params.dirs_per_level - 1 do
        let sub = Printf.sprintf "%s/d%d" dir d in
        api.Api.mkdir p ~dist:params.dist sub;
        spread sub (level + 1)
      done
  in
  for t = 0 to params.top - 1 do
    let top_dir = Printf.sprintf "%s/top%d" root t in
    api.Api.mkdir p ~dist:params.dist top_dir;
    spread top_dir 1
  done;
  List.rev !created

let walk (api : 'p Api.t) p ~root =
  let dirs = ref 0 and files = ref 0 in
  let rec go dir =
    incr dirs;
    let entries = api.Api.readdir p dir in
    List.iter
      (fun (name, ftype) ->
        let path = dir ^ "/" ^ name in
        ignore (api.Api.stat p path);
        match (ftype : Types.ftype) with
        | Types.Dir -> go path
        | Types.Reg | Types.Fifo -> incr files)
      entries
  in
  go root;
  (!dirs, !files)

let rm_rf (api : 'p Api.t) p ~root =
  let rec go dir =
    let entries = api.Api.readdir p dir in
    List.iter
      (fun (name, ftype) ->
        let path = dir ^ "/" ^ name in
        match (ftype : Types.ftype) with
        | Types.Dir -> go path
        | Types.Reg | Types.Fifo -> api.Api.unlink p path)
      entries;
    api.Api.rmdir p dir
  in
  go root
