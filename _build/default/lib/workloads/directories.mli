(** The "directories" benchmark (§5.2). *)

val spec : Spec.t
