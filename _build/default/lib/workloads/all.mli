(** The paper's benchmark suite (§5.2), in Figure-5 order. *)

val specs : Spec.t list

val find : string -> Spec.t
(** Raises [Not_found]. *)

val names : string list

val parallel : Spec.t list
(** The subset used for the multi-core figures (6, 7, 10-15): everything
    except [extract] — like the paper's Figure 15, which omits extract
    and rm. *)

val fig15 : Spec.t list
(** Figure 15's benchmark set (no extract, no rm dense/sparse). *)
