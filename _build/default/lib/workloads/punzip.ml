(* punzip: parallel gunzip of n copies of the manpages — each worker
   reads its compressed input, burns decompression cycles, and writes the
   ~3x larger output (I/O-heavy, benefits from direct buffer-cache
   access and creation affinity, Figures 12/14). *)

module Api = Hare_api.Api
open Hare_proto

let in_bytes ~scale = 16 * 1024 * scale

let expansion = 3

let setup (api : 'p Api.t) p ~nprocs ~scale =
  api.Api.mkdir p ~dist:false "/man";
  for i = 0 to nprocs - 1 do
    let fd = api.Api.openf p (Printf.sprintf "/man/pack%d.gz" i) Types.flags_w in
    let data = Tree.file_data 4096 i in
    for _ = 1 to in_bytes ~scale / 4096 do
      ignore (api.Api.write p fd data)
    done;
    api.Api.close p fd
  done

let worker (api : 'p Api.t) p ~idx ~nprocs:_ ~scale:_ =
  let src = api.Api.openf p (Printf.sprintf "/man/pack%d.gz" idx) Types.flags_r in
  let dst = api.Api.openf p (Printf.sprintf "/man/out%d" idx) Types.flags_w in
  let rec go () =
    let chunk = api.Api.read p src ~len:8192 in
    if chunk <> "" then begin
      (* inflate: ~8 cycles per output byte *)
      api.Api.compute p (8 * expansion * String.length chunk);
      for _ = 1 to expansion do
        Api.write_all api p dst chunk
      done;
      go ()
    end
  in
  go ();
  api.Api.close p src;
  api.Api.close p dst

let spec : Spec.t =
  {
    name = "punzip";
    mode = Spec.Workers;
    exec_policy = Hare_config.Config.Random_placement;
    uses_dist = false;
    setup;
    worker;
    programs = Spec.no_programs;
    (* one op per 4K of output *)
    ops = (fun ~nprocs ~scale -> nprocs * (in_bytes ~scale * expansion / 4096));
  }
