(** Synthetic directory trees (§5.2).

    The dense tree approximates the paper's "2 top-level directories and
    3 sub-levels with 10 directories and 2000 files per sub-level"; the
    sparse tree its "1 top-level directory and 14 sub-levels of
    directories with 2 subdirectories per level". Sizes scale down by
    default so the simulation stays fast; the paper-scale shapes are the
    same. *)

type params = {
  top : int;  (** top-level directories. *)
  levels : int;  (** sub-levels below each top. *)
  dirs_per_level : int;
  files_per_level : int;
  file_bytes : int;
  dist : bool;  (** create directories distributed. *)
}

val dense : scale:int -> params
(** 2 tops, 3 sub-levels, 5 dirs and [20*scale] files per level —
    the paper's 2/3/10/2000 shape, scaled down. *)

val sparse : scale:int -> params
(** 1 top, [6+scale] levels, 2 subdirs per level, 1 file per level. *)

(** [build api p ~root params] creates the tree under existing directory
    [root]; returns the list of directories created (topological order:
    parents first). *)
val build :
  'p Hare_api.Api.t -> 'p -> root:string -> params -> string list

(** [build_dirs api p ~root params] creates only the directory skeleton
    (parents first). *)
val build_dirs : 'p Hare_api.Api.t -> 'p -> root:string -> params -> unit

(** [fill_files api p ~root params ~part ~parts] creates the files of the
    directories owned by partition [part] (ownership by path hash, the
    same partition rm uses). Benchmarks run one filler process per worker
    so file inodes spread across cores exactly as a parallel harness
    would create them. *)
val fill_files :
  'p Hare_api.Api.t -> 'p -> root:string -> params -> part:int -> parts:int -> unit

val owner_of_path : string -> parts:int -> int

(** [walk api p ~root] recursively lists [root] (the pfind body),
    stat-ing every entry; returns (dirs visited, files seen). *)
val walk : 'p Hare_api.Api.t -> 'p -> root:string -> int * int

(** [rm_rf api p ~root] removes the tree rooted at (and including)
    [root]. *)
val rm_rf : 'p Hare_api.Api.t -> 'p -> root:string -> unit

(** [file_data n seed] is deterministic printable content. *)
val file_data : int -> int -> string

(** [count params] is the (directories, files) a [build] of [params]
    creates, excluding the root. *)
val count : params -> int * int

(** [dir_paths params ~root] lists every directory a [build] creates (and
    its depth below [root]) — derivable without any I/O because the tree
    shape is deterministic. *)
val dir_paths : params -> root:string -> (int * string) list

(** [file_paths params ~dir] lists the files [build] puts directly in one
    directory. *)
val file_paths : params -> dir:string -> string list
