(** The "writes" benchmark (§5.2). *)

val spec : Spec.t
