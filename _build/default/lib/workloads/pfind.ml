(* pfind dense / sparse: every worker recursively lists and stats the
   whole shared tree (parallel find). The dense tree uses distributed
   directories (readdir benefits from directory broadcast, §3.6.2); the
   sparse tree does not, and all workers visit the few directories in the
   same order — the paper's least scalable benchmark (§5.3.1). *)

module Api = Hare_api.Api

let filler ~uses_dist ~params (api : 'p Api.t) p args =
  match args with
  | [ part; parts; scale ] ->
      let ps = { (params ~scale:(int_of_string scale)) with Tree.dist = uses_dist } in
      Tree.fill_files api p ~root:"/ptree" ps ~part:(int_of_string part)
        ~parts:(int_of_string parts);
      0
  | _ -> 2

let mk ~name ~uses_dist ~params : Spec.t =
  {
    name;
    mode = Spec.Workers;
    exec_policy = Hare_config.Config.Round_robin;
    uses_dist;
    setup =
      (fun api p ~nprocs ~scale ->
        (* parallel file creation: see Rm *)
        let ps = { (params ~scale) with Tree.dist = uses_dist } in
        api.Api.mkdir p ~dist:uses_dist "/ptree";
        Tree.build_dirs api p ~root:"/ptree" ps;
        let pids =
          List.init nprocs (fun i ->
              api.Api.spawn p ~prog:(name ^ "-filler")
                ~args:
                  [ string_of_int i; string_of_int nprocs; string_of_int scale ])
        in
        List.iter
          (fun pid ->
            if api.Api.waitpid p pid <> 0 then failwith (name ^ ": filler"))
          pids);
    worker =
      (fun api p ~idx:_ ~nprocs:_ ~scale:_ ->
        ignore (Tree.walk api p ~root:"/ptree"));
    programs = (fun api -> [ (name ^ "-filler", filler ~uses_dist ~params api) ]);
    ops =
      (fun ~nprocs ~scale ->
        let dirs, files = Tree.count (params ~scale) in
        nprocs * (dirs + files));
  }

let dense : Spec.t =
  mk ~name:"pfind dense" ~uses_dist:true ~params:(fun ~scale -> Tree.dense ~scale)

let sparse : Spec.t =
  mk ~name:"pfind sparse" ~uses_dist:false
    ~params:(fun ~scale -> Tree.sparse ~scale)
