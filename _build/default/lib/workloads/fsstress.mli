(** The "fsstress" benchmark (§5.2). *)

val spec : Spec.t
