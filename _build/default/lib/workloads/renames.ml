(* renames: workers rename files back and forth inside one shared
   distributed directory (the ADD_MAP/RM_MAP microbenchmark of §5.3.3). *)

module Api = Hare_api.Api
open Hare_proto

let dir = "/renames"

let iters ~scale = 200 * scale

let setup (api : 'p Api.t) p ~nprocs:_ ~scale:_ = api.Api.mkdir p ~dist:true dir

let worker (api : 'p Api.t) p ~idx ~nprocs:_ ~scale =
  let a = Printf.sprintf "%s/w%d_a" dir idx in
  let b = Printf.sprintf "%s/w%d_b" dir idx in
  let fd = api.Api.openf p a Types.flags_w in
  api.Api.close p fd;
  for i = 1 to iters ~scale do
    if i land 1 = 1 then api.Api.rename p a b else api.Api.rename p b a
  done

let spec : Spec.t =
  {
    name = "renames";
    mode = Spec.Workers;
    exec_policy = Hare_config.Config.Round_robin;
    uses_dist = true;
    setup;
    worker;
    programs = Spec.no_programs;
    ops = (fun ~nprocs ~scale -> nprocs * iters ~scale);
  }
