lib/workloads/directories.mli: Spec
