lib/workloads/mailbench.mli: Spec
