lib/workloads/build_linux.mli: Spec
