lib/workloads/fsstress.mli: Spec
