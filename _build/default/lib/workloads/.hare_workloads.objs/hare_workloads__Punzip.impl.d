lib/workloads/punzip.ml: Hare_api Hare_config Hare_proto Printf Spec String Tree Types
