lib/workloads/extract.mli: Spec
