lib/workloads/writes.ml: Hare_api Hare_config Hare_proto Printf Spec Tree Types
