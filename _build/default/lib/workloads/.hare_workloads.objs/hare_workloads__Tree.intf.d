lib/workloads/tree.mli: Hare_api
