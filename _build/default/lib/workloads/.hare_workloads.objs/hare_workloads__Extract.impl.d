lib/workloads/extract.ml: Buffer Errno Hare_api Hare_config Hare_proto Hashtbl Printf Spec String Tree Types
