lib/workloads/build_linux.ml: Filename Hare_api Hare_config Hare_proto Hashtbl List Printf Spec String Tree Types
