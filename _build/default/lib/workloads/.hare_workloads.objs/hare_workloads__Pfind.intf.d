lib/workloads/pfind.mli: Spec
