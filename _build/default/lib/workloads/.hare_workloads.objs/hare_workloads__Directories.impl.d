lib/workloads/directories.ml: Hare_api Hare_config Printf Spec
