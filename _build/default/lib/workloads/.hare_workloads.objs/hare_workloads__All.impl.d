lib/workloads/all.ml: Build_linux Creates Directories Extract Fsstress List Mailbench Pfind Punzip Renames Rm Spec Writes
