lib/workloads/rm.ml: Errno Hare_api Hare_config Hare_proto Hashtbl List Spec Tree
