lib/workloads/rm.mli: Spec
