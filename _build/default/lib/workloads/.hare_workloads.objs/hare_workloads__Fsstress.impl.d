lib/workloads/fsstress.ml: Hare_api Hare_config Hare_proto List Printf Spec Tree Types
