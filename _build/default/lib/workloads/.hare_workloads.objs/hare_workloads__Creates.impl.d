lib/workloads/creates.ml: Hare_api Hare_config Hare_proto Printf Spec Types
