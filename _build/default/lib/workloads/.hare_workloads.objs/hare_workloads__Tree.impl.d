lib/workloads/tree.ml: Char Hare_api Hare_proto Hashtbl List Printf String Types
