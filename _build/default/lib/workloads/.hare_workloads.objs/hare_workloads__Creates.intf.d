lib/workloads/creates.mli: Spec
