lib/workloads/writes.mli: Spec
