lib/workloads/pfind.ml: Hare_api Hare_config List Spec Tree
