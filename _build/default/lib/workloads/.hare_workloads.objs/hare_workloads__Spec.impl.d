lib/workloads/spec.ml: Hare_api Hare_config
