lib/workloads/spec.mli: Hare_api Hare_config
