lib/workloads/punzip.mli: Spec
