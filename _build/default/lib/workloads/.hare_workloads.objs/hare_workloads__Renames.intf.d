lib/workloads/renames.mli: Spec
