lib/workloads/all.mli: Spec
