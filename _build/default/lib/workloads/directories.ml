(* directories: mkdir/rmdir pairs under a shared parent — stresses
   directory-entry creation and the rmdir protocol (the created
   directories are centralized; §5.4 lists this benchmark as not using
   the distribution flag). *)

module Api = Hare_api.Api

let dir = "/dirs"

let iters ~scale = 120 * scale

let setup (api : 'p Api.t) p ~nprocs:_ ~scale:_ =
  api.Api.mkdir p ~dist:false dir

let worker (api : 'p Api.t) p ~idx ~nprocs:_ ~scale =
  for i = 1 to iters ~scale do
    let d = Printf.sprintf "%s/w%d_%05d" dir idx i in
    api.Api.mkdir p ~dist:false d;
    api.Api.rmdir p d
  done

let spec : Spec.t =
  {
    name = "directories";
    mode = Spec.Workers;
    exec_policy = Hare_config.Config.Round_robin;
    uses_dist = false;
    setup;
    worker;
    programs = Spec.no_programs;
    ops = (fun ~nprocs ~scale -> 2 * nprocs * iters ~scale);
  }
