(** Benchmark descriptions (§5.2).

    A workload is world-polymorphic: its [setup] and [worker] bodies run
    against any {!Hare_api.Api.t} implementation, so the same benchmark
    binary-equivalently exercises Hare, the Linux baseline and the UNFS
    baseline — mirroring how the paper runs unmodified POSIX applications
    on all three systems. *)

type mode =
  | Workers  (** [nprocs] identical worker processes (most benchmarks). *)
  | Make
      (** a single driver process that parallelizes itself, make-style
          (the [build linux] benchmark: one make, [-j nprocs]). *)

type t = {
  name : string;
  mode : mode;
  exec_policy : Hare_config.Config.exec_policy;
      (** per-benchmark placement policy (§5.2: random for build linux
          and punzip, round-robin for the rest). *)
  uses_dist : bool;
      (** whether the benchmark requests distributed directories (§5.4
          lists: creates, renames, pfind dense, mailbench, build linux). *)
  setup : 'p. 'p Hare_api.Api.t -> 'p -> nprocs:int -> scale:int -> unit;
      (** untimed preparation run by the init process. *)
  worker : 'p. 'p Hare_api.Api.t -> 'p -> idx:int -> nprocs:int -> scale:int -> unit;
      (** timed body; [idx] in [0..nprocs-1] ([Make]: only idx 0 runs). *)
  programs :
    'p. 'p Hare_api.Api.t -> (string * ('p -> string list -> int)) list;
      (** helper programs the workload [spawn]s (cc, ld, ...). *)
  ops : nprocs:int -> scale:int -> int;
      (** operation count for throughput normalization. *)
}

val nop_setup : 'p Hare_api.Api.t -> 'p -> nprocs:int -> scale:int -> unit

val no_programs : 'p Hare_api.Api.t -> (string * ('p -> string list -> int)) list
