(* fsstress: the Linux Test Project stressor — each worker applies a
   random mix of file-system operations inside its own subtree (§5.2:
   "each of the fsstress processes perform operations in different
   subtrees", with directory distribution off). *)

module Api = Hare_api.Api
open Hare_proto

let iters ~scale = 220 * scale

type state = {
  mutable files : string list;
  mutable dirs : string list;  (* removable leaf dirs *)
  mutable seq : int;
}

let fresh st prefix =
  st.seq <- st.seq + 1;
  Printf.sprintf "%s/n%05d" prefix st.seq

let pick_from (api : 'p Api.t) p xs =
  match xs with
  | [] -> None
  | _ -> Some (List.nth xs (api.Api.random p (List.length xs)))

let worker (api : 'p Api.t) p ~idx ~nprocs:_ ~scale =
  let root = Printf.sprintf "/fss/w%d" idx in
  api.Api.mkdir p ~dist:false root;
  let st = { files = []; dirs = []; seq = 0 } in
  let data = Tree.file_data 1024 idx in
  for _ = 1 to iters ~scale do
    match api.Api.random p 100 with
    | r when r < 20 ->
        (* create *)
        let f = fresh st root in
        let fd = api.Api.openf p f Types.flags_w in
        api.Api.close p fd;
        st.files <- f :: st.files
    | r when r < 35 -> (
        (* write *)
        match pick_from api p st.files with
        | Some f ->
            let fd = api.Api.openf p f { Types.flags_rw with creat = true } in
            ignore (api.Api.lseek p fd ~pos:0 Types.Seek_end);
            ignore (api.Api.write p fd data);
            api.Api.close p fd
        | None -> ())
    | r when r < 50 -> (
        (* read *)
        match pick_from api p st.files with
        | Some f ->
            let fd = api.Api.openf p f Types.flags_r in
            ignore (api.Api.read p fd ~len:4096);
            api.Api.close p fd
        | None -> ())
    | r when r < 62 -> (
        (* unlink *)
        match st.files with
        | f :: rest ->
            api.Api.unlink p f;
            st.files <- rest
        | [] -> ())
    | r when r < 72 ->
        (* mkdir *)
        let d = fresh st root in
        api.Api.mkdir p ~dist:false d;
        st.dirs <- d :: st.dirs
    | r when r < 80 -> (
        (* rmdir (empty by construction) *)
        match st.dirs with
        | d :: rest ->
            api.Api.rmdir p d;
            st.dirs <- rest
        | [] -> ())
    | r when r < 87 -> (
        (* rename *)
        match st.files with
        | f :: rest ->
            let g = fresh st root in
            api.Api.rename p f g;
            st.files <- g :: rest
        | [] -> ())
    | r when r < 95 -> (
        (* stat *)
        match pick_from api p st.files with
        | Some f -> ignore (api.Api.stat p f)
        | None -> ())
    | _ ->
        (* readdir *)
        ignore (api.Api.readdir p root)
  done

let setup (api : 'p Api.t) p ~nprocs:_ ~scale:_ =
  api.Api.mkdir p ~dist:false "/fss"

let spec : Spec.t =
  {
    name = "fsstress";
    mode = Spec.Workers;
    exec_policy = Hare_config.Config.Round_robin;
    uses_dist = false;
    setup;
    worker;
    programs = Spec.no_programs;
    ops = (fun ~nprocs ~scale -> nprocs * iters ~scale);
  }
