(* rm dense / rm sparse: parallel removal of a prebuilt tree. The
   benchmark harness built the tree, so each worker derives its share of
   the paths arithmetically (as a real driver would hand explicit lists
   to n `rm` processes): it unlinks the files of the directories it owns
   and then removes those directories deepest-first, retrying briefly
   while another worker's child directories still exist. The result is a
   pure unlink/rmdir stressor, matching the Figure 5 operation mix. *)

module Api = Hare_api.Api
open Hare_proto

let root = "/rmtree"

let owner path nprocs = Hashtbl.hash path land 0x3FFFFFFF mod nprocs

let worker params (api : 'p Api.t) p ~idx ~nprocs ~scale:_ =
  let dirs = Tree.dir_paths params ~root in
  let mine = List.filter (fun (_, d) -> owner d nprocs = idx) dirs in
  (* unlink phase: all files of owned directories *)
  List.iter
    (fun (_, d) ->
      List.iter
        (fun f ->
          try api.Api.unlink p f with Errno.Error (Errno.ENOENT, _) -> ())
        (Tree.file_paths params ~dir:d))
    mine;
  (* rmdir phase: repeated deepest-first passes over whatever is still
     removable; directories whose children belong to slower workers are
     retried on the next pass, with a back-off so failed attempts do not
     flood the servers *)
  let pending =
    ref
      (List.sort (fun ((a : int), _) (b, _) -> compare b a) mine
      |> List.map snd)
  in
  if idx = 0 then pending := !pending @ [ root ];
  let stalls = ref 0 in
  while !pending <> [] do
    let progressed = ref false in
    pending :=
      List.filter
        (fun d ->
          match api.Api.rmdir p d with
          | () ->
              progressed := true;
              false
          | exception Errno.Error (Errno.ENOENT, _) ->
              progressed := true;
              false
          | exception Errno.Error ((Errno.ENOTEMPTY | Errno.EBUSY), _) -> true)
        !pending;
    if (not !progressed) && !pending <> [] then begin
      incr stalls;
      if !stalls > 10_000 then failwith "rm: no progress";
      api.Api.compute p 100_000
    end
  done

(* Files are created by one filler process per worker (spawned across
   cores), so file inodes spread exactly as a parallel harness would
   create them — not clustered on the setup core's server. *)
let filler_name name = name ^ "-filler"

let filler ~dist ~params (api : 'p Api.t) p args =
  match args with
  | [ part; parts; scale ] ->
      let ps = { (params ~scale:(int_of_string scale)) with Tree.dist } in
      Tree.fill_files api p ~root ps ~part:(int_of_string part)
        ~parts:(int_of_string parts);
      0
  | _ -> 2

let parallel_setup ~name ~dist ~params (api : 'p Api.t) p ~nprocs ~scale =
  let ps = { (params ~scale) with Tree.dist } in
  api.Api.mkdir p ~dist root;
  Tree.build_dirs api p ~root ps;
  let pids =
    List.init nprocs (fun i ->
        api.Api.spawn p ~prog:(filler_name name)
          ~args:[ string_of_int i; string_of_int nprocs; string_of_int scale ])
  in
  List.iter
    (fun pid ->
      if api.Api.waitpid p pid <> 0 then failwith (name ^ ": filler failed"))
    pids

let mk ~name ~dist ~params : Spec.t =
  {
    name;
    mode = Spec.Workers;
    exec_policy = Hare_config.Config.Round_robin;
    uses_dist = dist;
    setup =
      (fun api p ~nprocs ~scale ->
        parallel_setup ~name ~dist ~params api p ~nprocs ~scale);
    worker =
      (fun api p ~idx ~nprocs ~scale ->
        let ps = { (params ~scale) with Tree.dist } in
        worker ps api p ~idx ~nprocs ~scale);
    programs =
      (fun api -> [ (filler_name name, filler ~dist ~params api) ]);
    ops =
      (fun ~nprocs:_ ~scale ->
        let dirs, files = Tree.count (params ~scale) in
        dirs + files);
  }

(* The dense tree is the same distributed tree pfind dense uses; the
   sparse benchmark runs without distribution — §5.4: rmdir-heavy
   workloads on small directories do worse with it. *)
let dense : Spec.t =
  mk ~name:"rm dense" ~dist:true ~params:(fun ~scale -> Tree.dense ~scale)

let sparse : Spec.t =
  mk ~name:"rm sparse" ~dist:false ~params:(fun ~scale -> Tree.sparse ~scale)
