type mode = Workers | Make

type t = {
  name : string;
  mode : mode;
  exec_policy : Hare_config.Config.exec_policy;
  uses_dist : bool;
  setup : 'p. 'p Hare_api.Api.t -> 'p -> nprocs:int -> scale:int -> unit;
  worker :
    'p. 'p Hare_api.Api.t -> 'p -> idx:int -> nprocs:int -> scale:int -> unit;
  programs :
    'p. 'p Hare_api.Api.t -> (string * ('p -> string list -> int)) list;
  ops : nprocs:int -> scale:int -> int;
}

let nop_setup _api _p ~nprocs:_ ~scale:_ = ()

let no_programs _api = []
