(* mailbench: the sv6 mail-server benchmark (§5.2). Each delivery writes
   a message into a spool tmp directory, fsyncs, and renames it into
   new/ — both directories shared and distributed; periodically the
   worker picks up (reads and unlinks) its delivered mail. *)

module Api = Hare_api.Api
open Hare_proto

let iters ~scale = 100 * scale

let msg_bytes = 2048

let setup (api : 'p Api.t) p ~nprocs:_ ~scale:_ =
  api.Api.mkdir p ~dist:false "/mail";
  api.Api.mkdir p ~dist:true "/mail/tmp";
  api.Api.mkdir p ~dist:true "/mail/new"

let worker (api : 'p Api.t) p ~idx ~nprocs:_ ~scale =
  let body = Tree.file_data msg_bytes idx in
  for i = 1 to iters ~scale do
    let base = Printf.sprintf "w%d_%05d" idx i in
    let tmp = "/mail/tmp/" ^ base in
    let final = "/mail/new/" ^ base in
    let fd = api.Api.openf p tmp Types.flags_w in
    Api.write_all api p fd body;
    api.Api.fsync p fd;
    api.Api.close p fd;
    api.Api.rename p tmp final;
    (* every 8th delivery, pick up the oldest pending message *)
    if i mod 8 = 0 then begin
      let pickup = Printf.sprintf "/mail/new/w%d_%05d" idx (i - 7) in
      let fd = api.Api.openf p pickup Types.flags_r in
      ignore (Api.read_to_eof api p fd);
      api.Api.close p fd;
      api.Api.unlink p pickup
    end
  done

let spec : Spec.t =
  {
    name = "mailbench";
    mode = Spec.Workers;
    exec_policy = Hare_config.Config.Round_robin;
    uses_dist = true;
    setup;
    worker;
    programs = Spec.no_programs;
    ops = (fun ~nprocs ~scale -> nprocs * iters ~scale);
  }
