(* writes: each worker streams 4 KiB writes into its own file, rewinding
   periodically so the working set stays bounded — stresses the data path
   (direct buffer-cache access, Figure 12). *)

module Api = Hare_api.Api
open Hare_proto

let dir = "/writes"

let chunk = 4096

let wrap_every = 64

let iters ~scale = 1200 * scale

let setup (api : 'p Api.t) p ~nprocs:_ ~scale:_ =
  api.Api.mkdir p ~dist:false dir

let worker (api : 'p Api.t) p ~idx ~nprocs:_ ~scale =
  let path = Printf.sprintf "%s/w%d" dir idx in
  let fd = api.Api.openf p path Types.flags_w in
  let data = Tree.file_data chunk idx in
  for i = 1 to iters ~scale do
    ignore (api.Api.write p fd data);
    if i mod wrap_every = 0 then
      ignore (api.Api.lseek p fd ~pos:0 Types.Seek_set)
  done;
  api.Api.close p fd

let spec : Spec.t =
  {
    name = "writes";
    mode = Spec.Workers;
    exec_policy = Hare_config.Config.Round_robin;
    uses_dist = false;
    setup;
    worker;
    programs = Spec.no_programs;
    ops = (fun ~nprocs ~scale -> nprocs * iters ~scale);
  }
