(** The rm dense / rm sparse benchmarks (§5.2): parallel removal of a
    prebuilt tree, partitioned arithmetically among the workers. *)

val dense : Spec.t

val sparse : Spec.t
