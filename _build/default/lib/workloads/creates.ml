(* creates: every worker creates many files in one shared (distributed)
   directory — the workload directory distribution exists for (§3.3). *)

module Api = Hare_api.Api
open Hare_proto

let dir = "/creates"

let iters ~scale = 250 * scale

let setup (api : 'p Api.t) p ~nprocs:_ ~scale:_ = api.Api.mkdir p ~dist:true dir

let worker (api : 'p Api.t) p ~idx ~nprocs:_ ~scale =
  for i = 1 to iters ~scale do
    let path = Printf.sprintf "%s/w%d_%05d" dir idx i in
    let fd = api.Api.openf p path Types.flags_w in
    api.Api.close p fd
  done

let spec : Spec.t =
  {
    name = "creates";
    mode = Spec.Workers;
    exec_policy = Hare_config.Config.Round_robin;
    uses_dist = true;
    setup;
    worker;
    programs = Spec.no_programs;
    ops = (fun ~nprocs ~scale -> nprocs * iters ~scale);
  }
