lib/msg/mailbox.mli: Hare_config Hare_sim
