lib/msg/rpc.mli: Hare_config Hare_sim
