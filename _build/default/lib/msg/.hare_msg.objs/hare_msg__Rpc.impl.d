lib/msg/rpc.ml: Core_res Hare_config Hare_sim Ivar Mailbox
