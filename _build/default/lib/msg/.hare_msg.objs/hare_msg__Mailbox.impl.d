lib/msg/mailbox.ml: Bqueue Core_res Hare_config Hare_sim
