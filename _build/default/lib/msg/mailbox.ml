open Hare_sim

type 'a t = {
  queue : 'a Bqueue.t;
  owner : Core_res.t;
  costs : Hare_config.Costs.t;
  mutable sent : int;
  mutable received : int;
}

let create ~owner ~costs () =
  { queue = Bqueue.create (); owner; costs; sent = 0; received = 0 }

let owner t = t.owner

let send t ~from ?(payload_lines = 0) msg =
  let cost = t.costs.send + (payload_lines * t.costs.msg_per_line) in
  let cost =
    if Core_res.socket from <> Core_res.socket t.owner then
      cost + t.costs.send_cross_socket
    else cost
  in
  Core_res.compute from cost;
  (* Atomic delivery: the enqueue happens before send returns. *)
  Bqueue.push t.queue msg;
  t.sent <- t.sent + 1

let recv t =
  let msg = Bqueue.pop t.queue in
  t.received <- t.received + 1;
  Core_res.compute t.owner t.costs.recv;
  msg

let poll t =
  match Bqueue.pop_nonblocking t.queue with
  | None -> None
  | Some msg ->
      t.received <- t.received + 1;
      Core_res.compute t.owner t.costs.recv;
      Some msg

let pending t = Bqueue.length t.queue

let sent t = t.sent

let received t = t.received
