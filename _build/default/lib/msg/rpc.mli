(** Request/response messaging over {!Mailbox}.

    A server owns an endpoint and loops on {!recv}; each request carries a
    reply slot. Replies are themselves messages (the responder pays a send
    cost, the caller a receive cost). {!call_async}/{!await} let a client
    overlap several outstanding RPCs — the mechanism behind directory
    broadcast (§3.6.2). *)

type ('req, 'resp) t

val endpoint :
  owner:Hare_sim.Core_res.t -> costs:Hare_config.Costs.t -> unit -> ('req, 'resp) t

val owner : ('req, 'resp) t -> Hare_sim.Core_res.t

(** [call t ~from req] sends [req] and blocks until the response arrives. *)
val call :
  ('req, 'resp) t ->
  from:Hare_sim.Core_res.t ->
  ?payload_lines:int ->
  'req ->
  'resp

(** [call_async t ~from req] sends [req]; {!await} the returned future. *)
val call_async :
  ('req, 'resp) t ->
  from:Hare_sim.Core_res.t ->
  ?payload_lines:int ->
  'req ->
  'resp Hare_sim.Ivar.t

(** [await ~from ~costs future] blocks for the response and charges the
    receive cost to [from]. *)
val await :
  from:Hare_sim.Core_res.t ->
  costs:Hare_config.Costs.t ->
  'resp Hare_sim.Ivar.t ->
  'resp

(** [recv t] (server side) blocks for a request and returns it with its
    reply function. The reply function charges the send cost to the
    endpoint's owner core when invoked; it may be stashed and invoked
    later (how servers park blocking operations — pipe reads, rmdir
    serialization — without blocking their dispatch loop). *)
val recv : ('req, 'resp) t -> 'req * (?payload_lines:int -> 'resp -> unit)

(** [poll t] is the non-blocking {!recv}. *)
val poll :
  ('req, 'resp) t -> ('req * (?payload_lines:int -> 'resp -> unit)) option

val pending : ('req, 'resp) t -> int
