open Hare_sim

type ('req, 'resp) t = {
  mailbox : ('req * 'resp Ivar.t) Mailbox.t;
  costs : Hare_config.Costs.t;
}

let endpoint ~owner ~costs () = { mailbox = Mailbox.create ~owner ~costs (); costs }

let owner t = Mailbox.owner t.mailbox

let call_async t ~from ?payload_lines req =
  let reply = Ivar.create () in
  Mailbox.send t.mailbox ~from ?payload_lines (req, reply);
  reply

let await ~from ~costs future =
  let resp = Ivar.read future in
  Core_res.compute from costs.Hare_config.Costs.recv;
  resp

let call t ~from ?payload_lines req =
  await ~from ~costs:t.costs (call_async t ~from ?payload_lines req)

let reply_fn t ivar ?(payload_lines = 0) resp =
  (* The response is a message from the endpoint's core back to the
     caller; the responder pays the send cost. *)
  Core_res.compute (Mailbox.owner t.mailbox)
    (t.costs.Hare_config.Costs.send
    + (payload_lines * t.costs.Hare_config.Costs.msg_per_line));
  Ivar.fill ivar resp

let recv t =
  let req, ivar = Mailbox.recv t.mailbox in
  (req, fun ?payload_lines resp -> reply_fn t ivar ?payload_lines resp)

let poll t =
  match Mailbox.poll t.mailbox with
  | None -> None
  | Some (req, ivar) ->
      Some (req, fun ?payload_lines resp -> reply_fn t ivar ?payload_lines resp)

let pending t = Mailbox.pending t.mailbox
