lib/proc/process.ml: Array Bqueue Core_res Engine Errno Hare_client Hare_config Hare_msg Hare_proto Hare_sim Hashtbl Ivar List Logs Printf Rng Types Wire
