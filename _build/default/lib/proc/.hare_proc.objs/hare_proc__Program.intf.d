lib/proc/program.mli: Process
