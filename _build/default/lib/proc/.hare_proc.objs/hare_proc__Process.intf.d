lib/proc/process.mli: Hare_client Hare_config Hare_msg Hare_proto Hare_sim Hashtbl Types Wire
