lib/proc/program.ml: Hashtbl List Process
