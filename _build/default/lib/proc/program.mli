(** Registry of executable program images.

    The simulation cannot load binaries, so [exec] names a program
    registered here: an OCaml function from (process, argv) to an exit
    status. Standard utilities (the simulated cc, tar, gunzip, ...) and
    benchmark drivers register themselves at machine boot. *)

type body = Process.t -> string list -> int

type t

val create : unit -> t

(** [register t name body] installs a program; re-registering replaces. *)
val register : t -> string -> body -> unit

val find : t -> string -> body option

val names : t -> string list
