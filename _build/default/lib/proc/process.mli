(** Simulated processes.

    A process is a fiber pinned to one core, owning a file-descriptor
    table and a working directory and attached to its core's client
    library. Process ids encode the birth core ([Types.core_of_pid]), so
    signals route without shared state. The paper's restrictions apply:
    no threads within a process (§1), [fork] runs locally, migration
    happens only at [exec] (§3.5). *)

open Hare_proto

(** Kernel context: the per-machine state every process can reach. Built
    once by [Hare.Machine.boot]. *)
type kctx = {
  k_engine : Hare_sim.Engine.t;
  k_config : Hare_config.Config.t;
  k_cores : Hare_sim.Core_res.t array;
  k_clients : Hare_client.Client.t array;  (** per-core client libraries. *)
  k_sched_ports :
    (Wire.sched_req, Wire.sched_resp) Hare_msg.Rpc.t array;
      (** per-core scheduling servers. *)
  k_app_cores : int array;  (** cores applications may run on. *)
  k_pid_seq : int array;  (** per-core pid counters. *)
  k_proc_tables : (int, t) Hashtbl.t array;
      (** per-core pid → process, for local signal delivery. *)
}

and t = {
  pid : Types.pid;
  core_id : int;
  k : kctx;
  fdt : Hare_client.Fdtable.t;
  mutable cwd : string;
  mutable env : (string * string) list;
  exit_status : int Hare_sim.Ivar.t;
  mutable parent : t option;
  mutable children : t list;
  child_exits : (Types.pid * int) Hare_sim.Bqueue.t;
      (** exit notifications for [wait]; pushed by the child on exit. *)
  mutable reaped : (Types.pid * int) list;
  mutable handlers : (int * (int -> unit)) list;
  mutable killed : bool;
  mutable proxy_port : Wire.proxy_msg Hare_msg.Mailbox.t option;
      (** set while this process proxies for a remotely exec'd child. *)
  mutable rr_next : int;  (** round-robin exec placement state (§3.5). *)
  prng : Hare_sim.Rng.t;
}

exception Exited of int
(** Control exception implementing [Posix.exit]. *)

val make :
  k:kctx ->
  core:int ->
  ?pid:Types.pid ->
  ?parent:t ->
  fdt:Hare_client.Fdtable.t ->
  cwd:string ->
  env:(string * string) list ->
  rr_next:int ->
  unit ->
  t
(** Allocates a pid from the core's counter unless [pid] is given,
    registers the process in the core's table, and links it under
    [parent]. *)

val alloc_pid : kctx -> core:int -> Types.pid

val client : t -> Hare_client.Client.t

val core : t -> Hare_sim.Core_res.t

val find : kctx -> Types.pid -> t option
(** Look up a {e local} process (the caller must be on the pid's core). *)

val run : t -> ?on_exit:(int -> unit) -> (t -> int) -> unit
(** Spawn the process body as a fiber: runs [body t]; on return (or
    {!Exited}, or an uncaught [Errno.Error] which becomes status 1) it
    closes all fds, deregisters, fills [exit_status], notifies the
    parent's [child_exits] queue, then calls [on_exit]. *)

val deliver_signal : t -> from:Hare_sim.Core_res.t -> int -> unit
(** Local delivery: relays to the remote child if the process is a proxy
    (§3.5), runs an installed handler, or applies the default action
    (SIGKILL/SIGTERM/SIGINT set [killed]). *)

val install_handler : t -> signal:int -> (int -> unit) -> unit

val sigkill : int

val sigterm : int

val sigint : int
