type body = Process.t -> string list -> int

type t = (string, body) Hashtbl.t

let create () = Hashtbl.create 32

let register t name body = Hashtbl.replace t name body

let find t name = Hashtbl.find_opt t name

let names t = Hashtbl.fold (fun n _ acc -> n :: acc) t [] |> List.sort compare
