lib/api/api.ml: Buffer Errno Hare_proto String Types
