lib/api/api.mli: Hare_proto Types
