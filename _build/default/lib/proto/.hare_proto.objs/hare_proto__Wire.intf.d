lib/proto/wire.mli: Buffer Errno Format Hare_msg Hare_sim Types
