lib/proto/errno.mli: Format
