lib/proto/errno.ml: Format Printexc Printf
