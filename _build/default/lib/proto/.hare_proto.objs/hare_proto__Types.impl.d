lib/proto/types.ml: Char Format Int64 List String
