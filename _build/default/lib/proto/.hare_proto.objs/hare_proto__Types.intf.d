lib/proto/types.mli: Format
