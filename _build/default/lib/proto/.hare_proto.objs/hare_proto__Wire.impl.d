lib/proto/wire.ml: Buffer Errno Format Hare_msg Hare_sim Types
