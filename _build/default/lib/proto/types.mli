(** Identifiers and attribute records shared by Hare's client libraries
    and file servers. *)

type server_id = int
(** File servers are numbered [0 .. nservers-1]. *)

type client_id = int
(** Client libraries are per-core (Figure 2); the client id is the core id. *)

type fd_token = int
(** Server-issued handle for an open file: the unit of server-side file
    descriptor tracking (§3.4). *)

type pid = int
(** Process ids encode the birth core: [pid = core * pid_stride + seq], so
    signal routing needs no shared state. *)

val pid_stride : int

val core_of_pid : pid -> int

val make_pid : core:int -> seq:int -> pid

type ino = { server : server_id; ino : int }
(** Inode name: a (server id, per-server inode number) tuple — unique
    system-wide and allocatable without coordination (§3.6.4). *)

val root_ino : ino
(** The root directory entry lives at a designated server (§3.1). *)

val pp_ino : Format.formatter -> ino -> unit

type ftype = Reg | Dir | Fifo

val pp_ftype : Format.formatter -> ftype -> unit

type attr = {
  a_ino : ino;
  a_ftype : ftype;
  a_size : int;
  a_nlink : int;
  a_dist : bool;  (** directories: entries sharded across all servers. *)
}

type whence = Seek_set | Seek_cur | Seek_end

type open_flags = {
  rd : bool;
  wr : bool;
  creat : bool;
  excl : bool;
  trunc : bool;
  append : bool;
}

val flags_r : open_flags

val flags_w : open_flags
(** creat + trunc + write-only. *)

val flags_rw : open_flags

val flags_a : open_flags
(** creat + append + write-only. *)

(** [dentry_server ~dist ~width ~nservers ~dir ~name] is the server
    holding the directory entry [name] of directory [dir]: the
    directory's home server when centralized; when distributed, one of
    the directory's [width]-server shard set (§3.3; [width = nservers]
    is the paper's design, smaller widths are the §6 extension). The
    hash uses the directory's {e inode number}, so renaming a parent
    never re-hashes its entries. *)
val dentry_server :
  dist:bool -> width:int -> nservers:int -> dir:ino -> name:string -> server_id

(** [shard_servers ~dist ~width ~nservers ~dir] is the full set of
    servers that may hold entries of [dir] — the targets of readdir and
    rmdir fan-out. *)
val shard_servers :
  dist:bool -> width:int -> nservers:int -> dir:ino -> server_id list
