type server_id = int

type client_id = int

type fd_token = int

type pid = int

let pid_stride = 1_000_000

let core_of_pid pid = pid / pid_stride

let make_pid ~core ~seq = (core * pid_stride) + seq

type ino = { server : server_id; ino : int }

let root_ino = { server = 0; ino = 1 }

let pp_ino ppf t = Format.fprintf ppf "%d:%d" t.server t.ino

type ftype = Reg | Dir | Fifo

let pp_ftype ppf t =
  Format.pp_print_string ppf
    (match t with Reg -> "reg" | Dir -> "dir" | Fifo -> "fifo")

type attr = {
  a_ino : ino;
  a_ftype : ftype;
  a_size : int;
  a_nlink : int;
  a_dist : bool;
}

type whence = Seek_set | Seek_cur | Seek_end

type open_flags = {
  rd : bool;
  wr : bool;
  creat : bool;
  excl : bool;
  trunc : bool;
  append : bool;
}

let flags_r = { rd = true; wr = false; creat = false; excl = false; trunc = false; append = false }

let flags_w = { rd = false; wr = true; creat = true; excl = false; trunc = true; append = false }

let flags_rw = { rd = true; wr = true; creat = false; excl = false; trunc = false; append = false }

let flags_a = { rd = false; wr = true; creat = true; excl = false; trunc = false; append = true }

(* FNV-1a over the directory inode number and the entry name. *)
let hash_name ~dir ~name =
  let h = ref 0xcbf29ce484222325L in
  let mix byte =
    h := Int64.logxor !h (Int64.of_int byte);
    h := Int64.mul !h 0x100000001b3L
  in
  mix (dir.server land 0xff);
  mix (dir.ino land 0xff);
  mix ((dir.ino lsr 8) land 0xff);
  mix ((dir.ino lsr 16) land 0xff);
  String.iter (fun c -> mix (Char.code c)) name;
  Int64.to_int (Int64.logand !h 0x3FFFFFFFFFFFFFFFL)

(* Partial distribution (§6 extension): a distributed directory's shard
   set is [width] servers starting at a per-directory base, so different
   directories hash to different subsets. [width = nservers] reproduces
   the paper exactly (modulo the base rotation, which every client
   computes identically). *)
let shard_base ~nservers ~dir = hash_name ~dir ~name:"" mod nservers

let dentry_server ~dist ~width ~nservers ~dir ~name =
  if not dist then dir.server
  else begin
    let width = max 1 (min width nservers) in
    let base = shard_base ~nservers ~dir in
    (base + (hash_name ~dir ~name mod width)) mod nservers
  end

let shard_servers ~dist ~width ~nservers ~dir =
  if not dist then [ dir.server ]
  else begin
    let width = max 1 (min width nservers) in
    let base = shard_base ~nservers ~dir in
    List.init width (fun i -> (base + i) mod nservers)
  end
