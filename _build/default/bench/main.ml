(* bench/main.exe — regenerates every table and figure of the paper's
   evaluation (§5) from the simulator, then runs one Bechamel
   micro-benchmark per figure measuring the wall-clock cost of the
   simulated experiment underlying it.

   Usage:
     dune exec bench/main.exe              # everything, paper-scale shapes
     dune exec bench/main.exe -- --quick   # small machines (8 cores)
     dune exec bench/main.exe -- --figures-only | --bechamel-only
*)

module Figures = Hare_experiments.Figures
module Driver = Hare_experiments.Driver
module World = Hare_experiments.World
module Config = Hare_config.Config
module HD = Driver.Make (World.Hare_w)
module LD = Driver.Make (World.Linux_w)

let bench name = Hare_workloads.All.find name

let hare_run ?placement ?nprocs ~ncores name =
  let config =
    match placement with
    | Some p -> { (Driver.default_config ~ncores) with Config.placement = p }
    | None -> Driver.default_config ~ncores
  in
  fun () -> ignore (HD.run ~config ?nprocs (bench name))

(* One Bechamel test per figure: each run executes the simulated
   experiment that figure is built from (on a small machine, so a single
   sample stays around a millisecond of wall-clock). *)
let bechamel_tests () =
  let open Bechamel in
  let t name f = Test.make ~name (Staged.stage f) in
  [
    t "fig4/sloc" (fun () ->
        match Hare_stats.Sloc.repo_root () with
        | Some root -> ignore (Hare_stats.Sloc.count_tree (Filename.concat root "lib/msg"))
        | None -> ());
    t "fig5/opmix-creates" (hare_run ~ncores:2 "creates");
    t "fig6/scaling-step" (hare_run ~ncores:4 "creates");
    t "fig7/split-config" (hare_run ~placement:(Config.Split 2) ~ncores:4 "creates");
    t "fig8/unfs-baseline" (fun () ->
        let config = World.unfs_config (Driver.default_config ~ncores:2) in
        ignore (HD.run ~config ~nprocs:1 (bench "creates")));
    t "fig8/linux-baseline" (fun () ->
        ignore (LD.run ~config:(Driver.default_config ~ncores:1) ~nprocs:1 (bench "creates")));
    t "fig10/dist-ablation" (fun () ->
        let config =
          { (Driver.default_config ~ncores:4) with Config.dir_distribution = false }
        in
        ignore (HD.run ~config (bench "creates")));
    t "fig11/bcast-ablation" (fun () ->
        let config =
          { (Driver.default_config ~ncores:4) with Config.dir_broadcast = false }
        in
        ignore (HD.run ~config (bench "pfind dense")));
    t "fig12/direct-ablation" (fun () ->
        let config =
          { (Driver.default_config ~ncores:4) with Config.direct_access = false }
        in
        ignore (HD.run ~config (bench "writes")));
    t "fig13/dcache-ablation" (fun () ->
        let config =
          { (Driver.default_config ~ncores:4) with Config.dir_cache = false }
        in
        ignore (HD.run ~config (bench "renames")));
    t "fig14/affinity-ablation" (fun () ->
        let config =
          { (Driver.default_config ~ncores:4) with Config.creation_affinity = false }
        in
        ignore (HD.run ~config (bench "punzip")));
    t "fig15/linux-parallel" (fun () ->
        ignore (LD.run ~config:(Driver.default_config ~ncores:4) (bench "creates")));
    t "micro/rename-latency" (hare_run ~ncores:1 ~nprocs:1 "renames");
  ]

let run_bechamel () =
  let open Bechamel in
  print_endline "\n================ Bechamel micro-benchmarks ================\n";
  print_endline "(wall-clock cost of the simulated experiment behind each figure)\n";
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) ~kde:None
      ~stabilize:false ()
  in
  let tests = bechamel_tests () in
  let results =
    List.map
      (fun test ->
        let tbl = Benchmark.all cfg instances test in
        let ols =
          Analyze.all
            (Analyze.ols ~r_square:false ~bootstrap:0
               ~predictors:[| Measure.run |])
            Toolkit.Instance.monotonic_clock tbl
        in
        Hashtbl.fold (fun name v acc -> (name, v) :: acc) ols [])
      (List.map (fun t -> Bechamel.Test.make_grouped ~name:"" [ t ]) tests)
    |> List.concat
  in
  let rows =
    results
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (name, ols) ->
           let est =
             match Analyze.OLS.estimates ols with
             | Some (e :: _) -> Printf.sprintf "%.3f ms/run" (e /. 1e6)
             | _ -> "n/a"
           in
           [ name; est ])
  in
  Hare_stats.Table.print ~headers:[ "experiment"; "wall-clock" ] rows

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let figures_only = List.mem "--figures-only" args in
  let bechamel_only = List.mem "--bechamel-only" args in
  let opts = if quick then Figures.quick else Figures.default in
  let t0 = Unix.gettimeofday () in
  if not bechamel_only then Figures.print_all opts;
  if not figures_only then run_bechamel ();
  Printf.printf "\ntotal wall-clock: %.1fs\n" (Unix.gettimeofday () -. t0)
