(* Coherence demo: why Hare's invalidation/write-back protocol is
   necessary. We drive the raw memory system (shared DRAM + per-core
   private caches without coherence) directly and show a stale read, then
   show that the close-to-open actions fix it.

   Run with:  dune exec examples/coherence_demo.exe *)

open Hare_sim
open Hare_mem

let costs = Hare_config.Costs.default

let () =
  let engine = Engine.create () in
  let dram = Dram.create ~nblocks:8 in
  let core0 = Core_res.create engine ~id:0 ~socket:0 ~ctx_switch:0 in
  let core1 = Core_res.create engine ~id:1 ~socket:0 ~ctx_switch:0 in
  let cache0 = Pcache.create dram ~core:core0 ~costs ~capacity_lines:256 in
  let cache1 = Pcache.create dram ~core:core1 ~costs ~capacity_lines:256 in
  ignore
    (Engine.spawn engine ~name:"demo" (fun () ->
         (* Core 1 reads block 0 first, caching a (zeroed) copy. *)
         let v0 = Pcache.read_string cache1 ~block:0 ~off:0 ~len:5 in
         Printf.printf "core1 first read:            %S\n" v0;

         (* Core 0 writes — the write sits dirty in core 0's cache. *)
         Pcache.write_string cache0 ~block:0 ~off:0 "fresh";
         Printf.printf "core0 wrote %S; DRAM now has: %S\n" "fresh"
           (Dram.unsafe_read dram ~block:0 ~off:0 ~len:5);

         (* Even after core 0 writes BACK, core 1 still has a stale copy:
            no hardware invalidates it. *)
         Pcache.writeback_block cache0 0;
         Printf.printf "after writeback, DRAM has:    %S\n"
           (Dram.unsafe_read dram ~block:0 ~off:0 ~len:5);
         Printf.printf "core1 re-read (stale!):       %S\n"
           (Pcache.read_string cache1 ~block:0 ~off:0 ~len:5);

         (* Hare's open-time invalidation is what makes the fresh data
            visible — exactly the close-to-open protocol of §3.2. *)
         Pcache.invalidate_block cache1 0;
         Printf.printf "core1 after invalidate:       %S\n"
           (Pcache.read_string cache1 ~block:0 ~off:0 ~len:5)));
  Engine.run engine;
  Printf.printf "simulated cycles: %Ld\n" (Engine.now engine)
