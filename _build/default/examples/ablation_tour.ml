(* Ablation tour: run one benchmark on the same machine size with each of
   Hare's five techniques (§3.6) disabled in turn, plus the two extensions,
   and print what each is worth — a miniature of Figures 9-14 you can edit
   and play with.

   Run with:  dune exec examples/ablation_tour.exe [benchmark] *)

module Config = Hare_config.Config
module Driver = Hare_experiments.Driver
module World = Hare_experiments.World
module HD = Driver.Make (World.Hare_w)

let ncores = 8

let variants =
  [
    ("all techniques on (baseline)", fun c -> c);
    ( "no directory distribution",
      fun c -> { c with Config.dir_distribution = false } );
    ("no directory broadcast", fun c -> { c with Config.dir_broadcast = false });
    ("no direct cache access", fun c -> { c with Config.direct_access = false });
    ("no directory cache", fun c -> { c with Config.dir_cache = false });
    ("no creation affinity", fun c -> { c with Config.creation_affinity = false });
    ( "width-2 distribution (ext)",
      fun c -> { c with Config.dist_width = Some 2 } );
    ("block stealing on (ext)", fun c -> { c with Config.block_stealing = true });
  ]

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "creates" in
  let spec =
    try Hare_workloads.All.find bench
    with Not_found ->
      Printf.eprintf "unknown benchmark %S; known: %s\n" bench
        (String.concat ", " Hare_workloads.All.names);
      exit 1
  in
  Printf.printf "%s on %d cores:\n\n" bench ncores;
  let base = ref None in
  List.iter
    (fun (label, tweak) ->
      let config = tweak (Driver.default_config ~ncores) in
      let r = HD.run ~config spec in
      let rel =
        match !base with
        | None ->
            base := Some r.Driver.throughput;
            1.0
        | Some b -> r.Driver.throughput /. b
      in
      Printf.printf "  %-32s %9.0f ops/s  (%.2fx)\n" label r.Driver.throughput
        rel)
    variants
