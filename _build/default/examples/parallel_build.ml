(* Parallel build: a miniature `make -j` on Hare, demonstrating the two
   POSIX idioms the paper uses to motivate single-system-image support —
   a jobserver pipe shared across fork/exec (§1) and compilers running on
   remote cores via the scheduling servers (§3.5).

   Run with:  dune exec examples/parallel_build.exe *)

module Config = Hare_config.Config
module Machine = Hare.Machine
module Posix = Hare.Posix
open Hare_proto.Types

let nfiles = 12

let () =
  let config = Config.v ~ncores:8 () in
  let config = { config with Config.buffer_cache_blocks = 8192 } in
  let machine = Machine.boot config in

  (* "cc": takes a jobserver token, reads the source, compiles, writes
     the object, returns the token. The pipe fds arrive via argv, as GNU
     make passes --jobserver-fds. *)
  Machine.register_program machine "cc" (fun proc args ->
      match args with
      | [ src; obj; rfd; wfd ] ->
          let rfd = int_of_string rfd and wfd = int_of_string wfd in
          let token = Posix.read proc rfd ~len:1 in
          let fd = Posix.openf proc src flags_r in
          let source = Posix.read_all proc fd in
          Posix.close proc fd;
          Posix.compute proc (200 * String.length source);
          let fd = Posix.creat proc obj in
          ignore (Posix.write proc fd ("ELF:" ^ src));
          Posix.close proc fd;
          Posix.print proc
            (Printf.sprintf "  cc %s -> %s (core %d)\n" src obj
               proc.Hare_proc.Process.core_id);
          ignore (Posix.write proc wfd token);
          0
      | _ -> 2);

  let init, console =
    Machine.spawn_init machine ~name:"make" (fun proc _args ->
        Posix.mkdir proc ~dist:true "/src";
        for i = 0 to nfiles - 1 do
          let fd = Posix.creat proc (Printf.sprintf "/src/mod%02d.c" i) in
          ignore (Posix.write proc fd (String.make 500 'c'));
          Posix.close proc fd
        done;
        (* jobserver with 4 slots *)
        let rfd, wfd = Posix.pipe proc in
        ignore (Posix.write proc wfd "tttt");
        let pids =
          List.init nfiles (fun i ->
              Posix.spawn proc ~prog:"cc"
                ~args:
                  [
                    Printf.sprintf "/src/mod%02d.c" i;
                    Printf.sprintf "/src/mod%02d.o" i;
                    string_of_int rfd;
                    string_of_int wfd;
                  ])
        in
        let failures =
          List.filter (fun pid -> Posix.waitpid proc pid <> 0) pids
        in
        let objects =
          Posix.readdir proc "/src"
          |> List.filter (fun e ->
                 Filename.check_suffix e.Hare_proto.Wire.e_name ".o")
        in
        Posix.print proc
          (Printf.sprintf "built %d/%d objects, %d failures\n"
             (List.length objects) nfiles (List.length failures));
        if failures = [] && List.length objects = nfiles then 0 else 1)
  in
  Machine.run machine;
  print_string (Buffer.contents console);
  Printf.printf "make exited %s in %.3f simulated ms\n"
    (match Machine.exit_status machine init with
    | Some st -> string_of_int st
    | None -> "?")
    (Machine.seconds machine *. 1000.0)
