(* Mail server: the sv6 mailbench idiom on Hare. Deliverers on several
   cores write messages into a shared, distributed spool (tmp-file +
   rename for atomicity); a picker on another core reads and removes
   them. Both directions exercise sharded directories, cross-directory
   rename, and close-to-open visibility of message bodies across cores.

   Run with:  dune exec examples/mail_server.exe *)

module Config = Hare_config.Config
module Machine = Hare.Machine
module Posix = Hare.Posix
open Hare_proto.Types

let deliverers = 3

let per_deliverer = 8

let () =
  let config = Config.v ~ncores:4 () in
  let config = { config with Config.buffer_cache_blocks = 4096 } in
  let machine = Machine.boot config in

  Machine.register_program machine "deliverer" (fun proc args ->
      let id = int_of_string (List.hd args) in
      for i = 1 to per_deliverer do
        let base = Printf.sprintf "msg-%d-%03d" id i in
        let tmp = "/spool/tmp/" ^ base in
        let fd = Posix.creat proc tmp in
        ignore
          (Posix.write proc fd
             (Printf.sprintf "From: core%d\nSubject: mail %d\n\nbody body body\n"
                proc.Hare_proc.Process.core_id i));
        Posix.fsync proc fd;
        Posix.close proc fd;
        (* atomic delivery: rename into new/ *)
        Posix.rename proc tmp ("/spool/new/" ^ base)
      done;
      0);

  Machine.register_program machine "picker" (fun proc _args ->
      let expected = deliverers * per_deliverer in
      let picked = ref 0 in
      while !picked < expected do
        let entries = Posix.readdir proc "/spool/new" in
        List.iter
          (fun e ->
            let path = "/spool/new/" ^ e.Hare_proto.Wire.e_name in
            let fd = Posix.openf proc path flags_r in
            let msg = Posix.read_all proc fd in
            Posix.close proc fd;
            Posix.unlink proc path;
            incr picked;
            ignore msg)
          entries;
        if entries = [] then Posix.compute proc 50_000 (* idle poll *)
      done;
      Posix.print proc (Printf.sprintf "picked up %d messages\n" !picked);
      0);

  let init, console =
    Machine.spawn_init machine ~name:"mail-main" (fun proc _args ->
        Posix.mkdir proc "/spool";
        Posix.mkdir proc ~dist:true "/spool/tmp";
        Posix.mkdir proc ~dist:true "/spool/new";
        let picker = Posix.spawn proc ~prog:"picker" ~args:[] in
        let ds =
          List.init deliverers (fun i ->
              Posix.spawn proc ~prog:"deliverer" ~args:[ string_of_int i ])
        in
        let bad = List.filter (fun pid -> Posix.waitpid proc pid <> 0) ds in
        let picker_status = Posix.waitpid proc picker in
        let leftovers = Posix.readdir proc "/spool/new" in
        Posix.print proc
          (Printf.sprintf "spool empty: %b\n" (leftovers = []));
        if bad = [] && picker_status = 0 && leftovers = [] then 0 else 1)
  in
  Machine.run machine;
  print_string (Buffer.contents console);
  Printf.printf "mail server exited %s in %.3f simulated ms\n"
    (match Machine.exit_status machine init with
    | Some st -> string_of_int st
    | None -> "?")
    (Machine.seconds machine *. 1000.0)
