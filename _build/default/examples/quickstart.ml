(* Quickstart: boot a 4-core Hare machine, share a file between cores,
   and watch close-to-open consistency do its job.

   Run with:  dune exec examples/quickstart.exe *)

module Config = Hare_config.Config
module Machine = Hare.Machine
module Posix = Hare.Posix
open Hare_proto.Types

let () =
  (* A small non-cache-coherent machine: 4 cores, a file server per core
     (timeshare placement, like the paper's standard configuration). *)
  let config = Config.v ~ncores:4 () in
  let config = { config with Config.buffer_cache_blocks = 4096 } in
  let machine = Machine.boot config in

  (* Programs are OCaml functions; exec names them. This one runs on
     whatever core the round-robin policy picks. *)
  Machine.register_program machine "greet-reader" (fun proc args ->
      let who = match args with w :: _ -> w | [] -> "world" in
      let fd = Posix.openf proc "/greeting.txt" flags_r in
      let text = Posix.read_all proc fd in
      Posix.close proc fd;
      Posix.print proc (Printf.sprintf "[core %d] %s says: %s\n" proc.Hare_proc.Process.core_id who text);
      0);

  let init, console =
    Machine.spawn_init machine ~name:"quickstart" (fun proc _args ->
        (* Write a file on this core... *)
        let fd = Posix.creat proc "/greeting.txt" in
        ignore (Posix.write proc fd "hello from a non-cache-coherent multicore!");
        Posix.close proc fd;

        (* ...make a distributed directory and fill it concurrently... *)
        Posix.mkdir proc ~dist:true "/shared";
        let children =
          List.init 3 (fun i ->
              Posix.fork proc (fun child ->
                  let path = Printf.sprintf "/shared/file-%d" i in
                  let fd = Posix.creat child path in
                  ignore (Posix.write child fd (String.make 100 'x'));
                  Posix.close child fd;
                  0))
        in
        List.iter (fun pid -> ignore (Posix.waitpid proc pid)) children;
        let entries = Posix.readdir proc "/shared" in
        Posix.print proc
          (Printf.sprintf "/shared has %d entries\n" (List.length entries));

        (* ...and read the file from another core via remote exec. *)
        let pid = Posix.spawn proc ~prog:"greet-reader" ~args:[ "reader" ] in
        Posix.waitpid proc pid)
  in
  Machine.run machine;
  print_string (Buffer.contents console);
  Printf.printf "init exited with %s after %.3f simulated ms\n"
    (match Machine.exit_status machine init with
    | Some st -> string_of_int st
    | None -> "?")
    (Machine.seconds machine *. 1000.0)
