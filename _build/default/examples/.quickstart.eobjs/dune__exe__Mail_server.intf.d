examples/mail_server.mli:
