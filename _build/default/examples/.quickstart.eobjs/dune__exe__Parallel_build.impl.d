examples/parallel_build.ml: Buffer Filename Hare Hare_config Hare_proc Hare_proto List Printf String
