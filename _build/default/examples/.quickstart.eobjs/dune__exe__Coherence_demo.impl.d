examples/coherence_demo.ml: Core_res Dram Engine Hare_config Hare_mem Hare_sim Pcache Printf
