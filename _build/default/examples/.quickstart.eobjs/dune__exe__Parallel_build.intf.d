examples/parallel_build.mli:
