examples/quickstart.mli:
