examples/coherence_demo.mli:
