examples/ablation_tour.mli:
