examples/ablation_tour.ml: Array Hare_config Hare_experiments Hare_workloads List Printf String Sys
