examples/quickstart.ml: Buffer Hare Hare_config Hare_proc Hare_proto List Printf String
