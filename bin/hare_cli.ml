(* hare-cli: run Hare benchmarks and regenerate the paper's figures.

   Examples:
     hare_cli list
     hare_cli bench creates --cores 8 --world linux
     hare_cli bench "build linux" --cores 16 --scale 2
     hare_cli fig 6 --quick
     hare_cli fig all
*)

open Cmdliner
module Config = Hare_config.Config
module Figures = Hare_experiments.Figures
module Driver = Hare_experiments.Driver
module World = Hare_experiments.World
module HD = Driver.Make (World.Hare_w)
module LD = Driver.Make (World.Linux_w)

(* ---------- shared options ---------------------------------------------- *)

let cores_arg =
  Arg.(value & opt int 8 & info [ "cores" ] ~docv:"N" ~doc:"Number of cores.")

let nprocs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "nprocs" ] ~docv:"N"
        ~doc:"Worker processes (default: one per application core).")

let scale_arg =
  Arg.(
    value & opt int 1
    & info [ "scale" ] ~docv:"K"
        ~doc:
          "Workload scale multiplier (1 = fast default; larger approaches \
           paper-size runs).")

let world_arg =
  Arg.(
    value
    & opt (enum [ ("hare", `Hare); ("linux", `Linux); ("unfs", `Unfs) ]) `Hare
    & info [ "world" ] ~docv:"WORLD"
        ~doc:"System under test: hare, linux (tmpfs baseline), unfs.")

let split_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "split" ] ~docv:"S"
        ~doc:"Dedicate $(docv) cores to file servers (default: timeshare).")

let flag name doc = Arg.(value & flag & info [ name ] ~doc)

let no_dist = flag "no-dist" "Disable directory distribution."

let no_bcast = flag "no-broadcast" "Disable directory broadcast."

let no_direct = flag "no-direct" "Disable direct buffer-cache access."

let no_dcache = flag "no-dircache" "Disable the directory cache."

let no_affinity = flag "no-affinity" "Disable creation affinity."

let width_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "width" ] ~docv:"W"
        ~doc:
          "Distribute each directory over only $(docv) servers (extension,            paper §6).")

let steal =
  flag "steal" "Enable block stealing between servers (extension, §3.2)."

let shard_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shard" ] ~docv:"S"
        ~doc:
          "Consistent-hash placement: $(docv) file-server homes on a \
           rendezvous ring (extension; overrides --split).")

let vnodes_arg =
  Arg.(
    value & opt int 32
    & info [ "vnodes" ] ~docv:"V"
        ~doc:"Hash points per server on the placement ring (with --shard).")

let shard_plan_arg =
  Arg.(
    value & opt string ""
    & info [ "shard-plan" ] ~docv:"PLAN"
        ~doc:
          "Ring-membership plan (with --shard): 'add@CYCLES' activates a \
           spare server, 'remove:SID@CYCLES' drains one; ';'-separated.")

let mk_config ?(shard = None) ?(vnodes = 32) ?(shard_plan = "") cores split nd
    nb ndir ndc na width st =
  let c = Driver.default_config ~ncores:cores in
  let c =
    match (shard, split) with
    | Some s, _ ->
        {
          c with
          Config.placement = Config.Sharded { servers = s; vnodes };
          shard_plan;
        }
    | None, Some s -> { c with Config.placement = Config.Split s }
    | None, None -> c
  in
  {
    c with
    Config.dir_distribution = not nd;
    dir_broadcast = not nb;
    direct_access = not ndir;
    dir_cache = not ndc;
    creation_affinity = not na;
    dist_width = width;
    block_stealing = st;
  }

(* ---------- bench command ----------------------------------------------- *)

let run_bench name cores nprocs scale world split shard vnodes shard_plan nd nb
    ndir ndc na width st verbose =
  match Hare_workloads.All.find name with
  | exception Not_found ->
      Printf.eprintf "unknown benchmark %S; try `hare_cli list`\n" name;
      1
  | spec ->
      let config =
        mk_config ~shard ~vnodes ~shard_plan cores split nd nb ndir ndc na
          width st
      in
      let t0 = Unix.gettimeofday () in
      let result =
        match world with
        | `Hare -> HD.run ~config ?nprocs ~scale spec
        | `Linux -> LD.run ~config ?nprocs ~scale spec
        | `Unfs -> HD.run ~config:(World.unfs_config config) ?nprocs ~scale spec
      in
      let wall = Unix.gettimeofday () -. t0 in
      Printf.printf
        "%s on %s: %d procs, %d ops in %.6f simulated seconds = %.0f ops/s\n"
        result.Driver.bench result.Driver.world result.Driver.nprocs
        result.Driver.ops result.Driver.elapsed result.Driver.throughput;
      let es = result.Driver.engine in
      if es.World.es_events > 0 then
        Printf.printf
          "engine: %d events, peak %d live fibers, %.2fs wall (%.0f \
           sim_ops/s host-side)\n"
          es.World.es_events es.World.es_peak_fibers wall
          (if wall > 0.0 then float_of_int result.Driver.ops /. wall else 0.0);
      if verbose then begin
        print_endline "system-call mix:";
        Format.printf "%a@." Hare_stats.Opcount.pp result.Driver.syscalls
      end;
      0

let bench_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCH" ~doc:"Benchmark name (see `hare_cli list`).")
  in
  let verbose = flag "verbose" "Also print the system-call mix." in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run one benchmark and print its throughput, plus the simulator \
          engine's host-side cost (events executed, peak live fibers, wall \
          clock). Machines up to 512 cores are practical, e.g. $(b,bench \
          creates --cores 512 --split 64); $(b,bench/main.exe -- --json) \
          emits the full 64-512-core engine-scalability sweep \
          (sim_ops_per_sec, sim_events_per_sec, peak_live_fibers per row).")
    Term.(
      const run_bench $ name_arg $ cores_arg $ nprocs_arg $ scale_arg
      $ world_arg $ split_arg $ shard_arg $ vnodes_arg $ shard_plan_arg
      $ no_dist $ no_bcast $ no_direct $ no_dcache $ no_affinity $ width_arg
      $ steal $ verbose)

(* ---------- fig command ------------------------------------------------- *)

let run_fig which quick scale =
  let opts =
    let base = if quick then Figures.quick else Figures.default in
    { base with Figures.scale }
  in
  (match which with
  | "4" -> Figures.print_fig4 ()
  | "5" -> Figures.print_fig5 opts
  | "6" -> Figures.print_fig6 opts
  | "7" -> Figures.print_fig7 opts
  | "8" -> Figures.print_fig8 opts
  | "9" | "10" | "11" | "12" | "13" | "14" -> Figures.print_techniques opts
  | "15" -> Figures.print_fig15 opts
  | "micro" -> Figures.print_micro opts
  | "ext" | "extensions" -> Figures.print_extensions opts
  | "all" -> Figures.print_all opts
  | other ->
      Printf.eprintf "unknown figure %S (use 4-15, micro, all)\n" other;
      exit 1);
  0

let fig_cmd =
  let which =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FIG" ~doc:"Figure number (4-15), 'micro', 'ext', or 'all'.")
  in
  let quick =
    flag "quick" "Use small machine sizes (8 cores) for a fast run."
  in
  Cmd.v
    (Cmd.info "fig" ~doc:"Regenerate one of the paper's figures or tables.")
    Term.(const run_fig $ which $ quick $ scale_arg)

(* ---------- shell command ----------------------------------------------- *)

(* An interactive shell over a live simulated machine: each command is a
   POSIX call issued by the init process; the simulation advances while
   the command executes. *)
let shell_help =
  {|commands:
  ls [dir]            readdir
  cat FILE            print a file
  write FILE TEXT..   create/overwrite a file
  append FILE TEXT..  append to a file
  mkdir [-d] DIR      create a directory (-d: distributed)
  rm FILE | rmdir DIR
  mv OLD NEW          rename
  stat PATH           attributes
  cd DIR | pwd
  spawn N             run N remote workers that each create a file in /shell
  time                simulated time so far
  help | exit
|}

let run_shell cores =
  let module Posix = Hare.Posix in
  let config = mk_config cores None false false false false false None false in
  let m = Hare.Machine.boot config in
  Hare.Machine.register_program m "shell-worker" (fun p args ->
      let id = match args with a :: _ -> a | [] -> "?" in
      let fd =
        Posix.openf p
          (Printf.sprintf "/shell/worker-%s-core%d" id p.Hare_proc.Process.core_id)
          Hare_proto.Types.flags_w
      in
      ignore (Posix.write p fd ("written by worker " ^ id));
      Posix.close p fd;
      0);
  let init, _console =
    Hare.Machine.spawn_init m ~name:"shell" (fun p _ ->
        print_string shell_help;
        let quit = ref false in
        while not !quit do
          Printf.printf "hare:%s> %!" (Posix.getcwd p);
          match In_channel.input_line In_channel.stdin with
          | None -> quit := true
          | Some line -> (
              let words =
                String.split_on_char ' ' line |> List.filter (( <> ) "")
              in
              try
                match words with
                | [] -> ()
                | [ "exit" ] | [ "quit" ] -> quit := true
                | [ "help" ] -> print_string shell_help
                | [ "pwd" ] -> print_endline (Posix.getcwd p)
                | [ "cd"; d ] -> Posix.chdir p d
                | [ "ls" ] | [ "ls"; _ ] ->
                    let dir = match words with [ _; d ] -> d | _ -> "." in
                    List.iter
                      (fun (e : Hare_proto.Wire.entry) ->
                        Printf.printf "%s%s
" e.Hare_proto.Wire.e_name
                          (if e.Hare_proto.Wire.e_ftype = Hare_proto.Types.Dir
                           then "/"
                           else ""))
                      (Posix.readdir p dir)
                | [ "cat"; f ] ->
                    let fd = Posix.openf p f Hare_proto.Types.flags_r in
                    print_endline (Posix.read_all p fd);
                    Posix.close p fd
                | "write" :: f :: rest ->
                    let fd = Posix.openf p f Hare_proto.Types.flags_w in
                    ignore (Posix.write p fd (String.concat " " rest));
                    Posix.close p fd
                | "append" :: f :: rest ->
                    let fd = Posix.openf p f Hare_proto.Types.flags_a in
                    ignore (Posix.write p fd (String.concat " " rest));
                    Posix.close p fd
                | [ "mkdir"; "-d"; d ] -> Posix.mkdir p ~dist:true d
                | [ "mkdir"; d ] -> Posix.mkdir p d
                | [ "rm"; f ] -> Posix.unlink p f
                | [ "rmdir"; d ] -> Posix.rmdir p d
                | [ "mv"; a; b ] -> Posix.rename p a b
                | [ "stat"; path ] ->
                    let a = Posix.stat p path in
                    Printf.printf "ino=%d:%d type=%s size=%d dist=%b
"
                      a.Hare_proto.Types.a_ino.Hare_proto.Types.server
                      a.Hare_proto.Types.a_ino.Hare_proto.Types.ino
                      (match a.Hare_proto.Types.a_ftype with
                      | Hare_proto.Types.Dir -> "dir"
                      | Hare_proto.Types.Reg -> "file"
                      | Hare_proto.Types.Fifo -> "fifo")
                      a.Hare_proto.Types.a_size a.Hare_proto.Types.a_dist
                | [ "spawn"; n ] ->
                    if not (Posix.exists p "/shell") then
                      Posix.mkdir p ~dist:true "/shell";
                    let pids =
                      List.init (int_of_string n) (fun i ->
                          Posix.spawn p ~prog:"shell-worker"
                            ~args:[ string_of_int i ])
                    in
                    List.iter
                      (fun pid ->
                        Printf.printf "pid %d -> exit %d
" pid
                          (Posix.waitpid p pid))
                      pids
                | [ "time" ] ->
                    Printf.printf "%.3f simulated ms
"
                      (Hare.Machine.seconds m *. 1000.0)
                | _ -> print_endline "unknown command; try 'help'"
              with Hare_proto.Errno.Error (e, ctx) ->
                Printf.printf "error: %s (%s)
" (Hare_proto.Errno.to_string e)
                  ctx)
        done;
        0)
  in
  Hare.Machine.run m;
  ignore init;
  0

let shell_cmd =
  Cmd.v
    (Cmd.info "shell"
       ~doc:
         "Interactive shell on a live simulated Hare machine (reads \
          commands from stdin; try 'help').")
    Term.(const run_shell $ cores_arg)

(* ---------- faults command ---------------------------------------------- *)

(* Run a workload on Hare under a fault plan and report the robustness
   counters: what the injector did to the messages, and what the retry
   and crash-recovery machinery did about it. *)
let run_faults name plan deadline retries seed cores nprocs scale strict =
  match Hare_workloads.All.find name with
  | exception Not_found ->
      Printf.eprintf "unknown benchmark %S; try `hare_cli list`\n" name;
      1
  | spec -> (
      match Hare_fault.Plan.parse plan with
      | Error msg ->
          Printf.eprintf "bad --plan: %s\n" msg;
          1
      | Ok _ ->
          let module Machine = Hare.Machine in
          let module Posix = Hare.Posix in
          let module Api = Hare_api.Api in
          (* Wire faults only bite tagged (retryable) requests, so a plan
             without an armed deadline would silently no-op; conversely an
             armed deadline with no plan still times out the slowest RPCs.
             Default to off when fault-free and a sane deadline otherwise. *)
          let deadline =
            match deadline with
            | Some d -> d
            | None -> if plan = "" then 0 else 25_000
          in
          if plan <> "" && deadline <= 0 then (
            Printf.eprintf
              "a fault plan needs --deadline > 0: without timeouts clients \
               never retry a dropped message\n";
            exit 1);
          let config =
            {
              (Driver.default_config ~ncores:cores) with
              Config.exec_policy = spec.Hare_workloads.Spec.exec_policy;
              fault_plan = plan;
              rpc_deadline = deadline;
              rpc_retries = retries;
              partial_broadcast = not strict;
              seed = Int64.of_int seed;
            }
          in
          let m = Machine.boot config in
          let api = World.Hare_w.api m in
          let nprocs =
            match nprocs with
            | Some n -> n
            | None -> List.length (Config.app_cores config)
          in
          List.iter
            (fun (prog, body) -> api.Api.register_program prog body)
            (spec.Hare_workloads.Spec.programs api);
          api.Api.register_program "bench-worker" (fun p args ->
              let idx = match args with a :: _ -> int_of_string a | [] -> 0 in
              spec.Hare_workloads.Spec.worker api p ~idx ~nprocs ~scale;
              0);
          let init, _ =
            Machine.spawn_init m
              ~name:("faults-" ^ spec.Hare_workloads.Spec.name)
              (fun p _ ->
                spec.Hare_workloads.Spec.setup api p ~nprocs ~scale;
                let workers =
                  match spec.Hare_workloads.Spec.mode with
                  | Hare_workloads.Spec.Workers -> nprocs
                  | Hare_workloads.Spec.Make -> 1
                in
                let pids =
                  List.init workers (fun i ->
                      Posix.spawn p ~prog:"bench-worker"
                        ~args:[ string_of_int i ])
                in
                List.fold_left
                  (fun acc pid ->
                    if Posix.waitpid p pid <> 0 then acc + 1 else acc)
                  0 pids)
          in
          Machine.run m;
          let failed =
            match Machine.exit_status m init with
            | Some 0 -> false
            | Some n ->
                Printf.printf "%d worker(s) failed (gave up under faults)\n" n;
                true
            | None ->
                print_endline "init never finished";
                true
          in
          Printf.printf "%s under plan %S: %.6f simulated seconds, %d RPCs\n"
            spec.Hare_workloads.Spec.name plan (Machine.seconds m)
            (Machine.total_rpcs m);
          let robust = Machine.robustness m in
          Hare_stats.Table.print
            ~headers:[ "robustness counter"; "count" ]
            (List.map
               (fun (k, v) -> [ k; string_of_int v ])
               (Hare_stats.Robust.to_list robust));
          if failed then 1 else 0)

let faults_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCH" ~doc:"Benchmark name (see `hare_cli list`).")
  in
  let plan_arg =
    Arg.(
      value & opt string ""
      & info [ "plan" ] ~docv:"SPEC"
          ~doc:
            "Fault plan, e.g. \
             'drop:fs:0.05;dup:fs1:0.02;crash:1@200000+150000'. Empty \
             runs fault-free.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline" ] ~docv:"CYCLES"
          ~doc:
            "First-attempt RPC deadline in cycles; 0 disables retries. \
             Defaults to 0 without a plan, 25000 with one.")
  in
  let retries_arg =
    Arg.(
      value & opt int 12
      & info [ "retries" ] ~docv:"N"
          ~doc:"RPC attempts before giving up with EIO.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S"
          ~doc:"Simulation seed; same seed + plan => identical faults.")
  in
  let strict =
    flag "strict-broadcast"
      "Fail broadcasts with EIO instead of returning partial results."
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run one benchmark on Hare under a deterministic fault plan and \
          print the robustness counters.")
    Term.(
      const run_faults $ name_arg $ plan_arg $ deadline_arg $ retries_arg
      $ seed_arg $ cores_arg $ nprocs_arg $ scale_arg $ strict)

(* ---------- overload command -------------------------------------------- *)

(* Drive the open-loop overload workload with the flow-control, load-shed,
   retry-budget and circuit-breaker knobs open, and report how gracefully
   the machine degrades: goodput vs. offered load, shed / fast-fail
   counts, breaker transitions, and per-class latency percentiles from
   the trace spans. Optionally runs under the coherence sanitizer and a
   fault plan (a server crash is what trips the breakers). *)
let run_overload cores split nprocs scale period deadline retries deadline_max
    capacity budget breaker cooldown watermark seed plan check =
  let module Machine = Hare.Machine in
  let module Posix = Hare.Posix in
  let module Api = Hare_api.Api in
  let module Check = Hare_check.Check in
  let module Sanity = Hare_stats.Sanity in
  let module O = Hare_workloads.Overload in
  match Hare_fault.Plan.parse plan with
  | Error msg ->
      Printf.eprintf "bad --plan: %s\n" msg;
      1
  | Ok _ ->
      let spec = O.spec in
      let config =
        {
          (Driver.default_config ~ncores:cores) with
          Config.exec_policy = spec.Hare_workloads.Spec.exec_policy;
          placement = Config.Split split;
          trace_enabled = true;
          check_enabled = check;
          fault_plan = plan;
          rpc_deadline = deadline;
          rpc_retries = retries;
          rpc_deadline_max = deadline_max;
          deadline_propagation = deadline > 0;
          mailbox_capacity = capacity;
          retry_budget = budget;
          breaker_threshold = breaker;
          breaker_cooldown = cooldown;
          shed_watermark = watermark;
          seed = Int64.of_int seed;
        }
      in
      (* Open-loop saturation needs more synchronous workers than app
         cores: each worker has at most one request outstanding. *)
      let nprocs = match nprocs with Some n -> n | None -> 3 * cores in
      O.reset ();
      O.period := period;
      let m = Machine.boot config in
      let api = World.Hare_w.api m in
      List.iter
        (fun (prog, body) -> api.Api.register_program prog body)
        (spec.Hare_workloads.Spec.programs api);
      api.Api.register_program "bench-worker" (fun p args ->
          let idx = match args with a :: _ -> int_of_string a | [] -> 0 in
          spec.Hare_workloads.Spec.worker api p ~idx ~nprocs ~scale;
          0);
      let init, _ =
        Machine.spawn_init m ~name:"overload" (fun p _ ->
            spec.Hare_workloads.Spec.setup api p ~nprocs ~scale;
            let pids =
              List.init nprocs (fun i ->
                  Posix.spawn p ~prog:"bench-worker" ~args:[ string_of_int i ])
            in
            List.fold_left
              (fun acc pid -> if Posix.waitpid p pid <> 0 then acc + 1 else acc)
              0 pids)
      in
      Machine.run m;
      let failed =
        match Machine.exit_status m init with
        | Some 0 -> false
        | Some n ->
            Printf.printf "%d worker(s) failed\n" n;
            true
        | None ->
            print_endline "init never finished";
            true
      in
      let secs = Machine.seconds m in
      Printf.printf
        "overload: %d cores (%d server), %d workers, mean period %d cycles, \
         %.6f simulated seconds\n"
        cores split nprocs period secs;
      Printf.printf "  sent %d | ok %d | shed %d | fast-fail %d | skipped %d\n"
        !O.sent !O.ok !O.shed !O.fast_fail !O.skipped;
      if secs > 0. && !O.sent > 0 then
        Printf.printf
          "  goodput %.0f ops/s of %.0f offered (%.1f%% completed)\n"
          (float_of_int !O.ok /. secs)
          (float_of_int !O.sent /. secs)
          (100. *. float_of_int !O.ok /. float_of_int !O.sent);
      let robust = Machine.robustness m in
      Hare_stats.Table.print
        ~headers:[ "robustness counter"; "count" ]
        (List.map
           (fun (k, v) -> [ k; string_of_int v ])
           (Hare_stats.Robust.to_list robust));
      (match Machine.trace m with
      | None -> ()
      | Some tr -> (
          match Driver.latencies_of_trace tr with
          | [] -> ()
          | dists ->
              Hare_stats.Table.print
                ~headers:[ "class"; "n"; "p50"; "p95"; "p99"; "max" ]
                (List.map
                   (fun (cls, d) ->
                     [
                       cls;
                       string_of_int d.Hare_stats.Latency.n;
                       Int64.to_string d.Hare_stats.Latency.p50;
                       Int64.to_string d.Hare_stats.Latency.p95;
                       Int64.to_string d.Hare_stats.Latency.p99;
                       Int64.to_string d.Hare_stats.Latency.lmax;
                     ])
                   dists)));
      let violations =
        match Machine.check m with
        | None -> 0
        | Some chk ->
            let stats = Check.stats chk in
            Hare_stats.Table.print
              ~headers:[ "rule"; "violations" ]
              (List.map
                 (fun (k, v) -> [ k; string_of_int v ])
                 (Sanity.violations stats));
            let shown = ref 0 in
            List.iter
              (fun v ->
                if !shown < 20 then begin
                  Format.printf "%a@." Check.pp_violation v;
                  incr shown
                end)
              (Check.violations chk);
            Sanity.total_violations stats
      in
      if violations > 0 then begin
        print_endline "FAIL: coherence/protocol violations under overload";
        1
      end
      else if failed then 1
      else 0

let overload_cmd =
  let split_arg =
    Arg.(
      value & opt int 1
      & info [ "split" ] ~docv:"S"
          ~doc:"Cores dedicated to file servers (the bottleneck).")
  in
  let period_arg =
    Arg.(
      value & opt int 30_000
      & info [ "period" ] ~docv:"CYCLES"
          ~doc:
            "Mean inter-arrival gap per worker; smaller means a hotter \
             offered load.")
  in
  let deadline_arg =
    Arg.(
      value & opt int 60_000
      & info [ "deadline" ] ~docv:"CYCLES"
          ~doc:"First-attempt RPC deadline; 0 disables retries.")
  in
  let retries_arg =
    Arg.(
      value & opt int 6
      & info [ "retries" ] ~docv:"N"
          ~doc:"RPC attempts before giving up with EIO.")
  in
  let deadline_max_arg =
    Arg.(
      value & opt int 240_000
      & info [ "deadline-max" ] ~docv:"CYCLES"
          ~doc:"Ceiling on the backed-off retry deadline.")
  in
  let capacity_arg =
    Arg.(
      value & opt int 24
      & info [ "capacity" ] ~docv:"N"
          ~doc:
            "Server mailbox capacity; senders without a credit park until \
             a slot frees (0 = unbounded).")
  in
  let budget_arg =
    Arg.(
      value & opt int 12
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Per-server retry budget; an empty bucket turns timeouts into \
             immediate give-ups (0 = unlimited).")
  in
  let breaker_arg =
    Arg.(
      value & opt int 6
      & info [ "breaker" ] ~docv:"N"
          ~doc:
            "Consecutive give-ups that open a per-server circuit breaker \
             (0 = disabled).")
  in
  let cooldown_arg =
    Arg.(
      value & opt int 150_000
      & info [ "cooldown" ] ~docv:"CYCLES"
          ~doc:"How long an open breaker fast-fails before probing.")
  in
  let watermark_arg =
    Arg.(
      value & opt int 8
      & info [ "watermark" ] ~docv:"N"
          ~doc:
            "Server queue depth above which background (then data) \
             requests are shed with EBUSY (0 = disabled).")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S"
          ~doc:"Simulation seed; arrivals are deterministic per seed.")
  in
  let plan_arg =
    Arg.(
      value & opt string ""
      & info [ "plan" ] ~docv:"SPEC"
          ~doc:
            "Fault plan, e.g. 'crash:0@2000000+500000' — a server crash \
             under load is what trips the circuit breakers.")
  in
  let check = flag "check" "Also run the coherence sanitizer." in
  Cmd.v
    (Cmd.info "overload"
       ~doc:
         "Drive the open-loop overload workload past saturation with the \
          flow-control, shedding, retry-budget and circuit-breaker knobs \
          open; print goodput, shed/fast-fail counts, breaker transitions \
          and per-class latency percentiles.")
    Term.(
      const run_overload $ cores_arg $ split_arg $ nprocs_arg $ scale_arg
      $ period_arg $ deadline_arg $ retries_arg $ deadline_max_arg
      $ capacity_arg $ budget_arg $ breaker_arg $ cooldown_arg $ watermark_arg
      $ seed_arg $ plan_arg $ check)

(* ---------- perf command ------------------------------------------------ *)

(* Run a workload with the pipelining/batching/extent knobs set from the
   command line and print the Perf counters: window high-water mark,
   batch-size histogram, extent-lease hit rate (PR 2). *)
let run_perf name cores nprocs scale window batch extent dcap =
  match Hare_workloads.All.find name with
  | exception Not_found ->
      Printf.eprintf "unknown benchmark %S; try `hare_cli list`\n" name;
      1
  | spec ->
      let module Machine = Hare.Machine in
      let module Posix = Hare.Posix in
      let module Api = Hare_api.Api in
      let config =
        {
          (Driver.default_config ~ncores:cores) with
          Config.exec_policy = spec.Hare_workloads.Spec.exec_policy;
          rpc_window = window;
          batch_max = batch;
          alloc_extent = extent;
          dircache_capacity = dcap;
        }
      in
      let m = Machine.boot config in
      let api = World.Hare_w.api m in
      let nprocs =
        match nprocs with
        | Some n -> n
        | None -> List.length (Config.app_cores config)
      in
      List.iter
        (fun (prog, body) -> api.Api.register_program prog body)
        (spec.Hare_workloads.Spec.programs api);
      api.Api.register_program "bench-worker" (fun p args ->
          let idx = match args with a :: _ -> int_of_string a | [] -> 0 in
          spec.Hare_workloads.Spec.worker api p ~idx ~nprocs ~scale;
          0);
      let init, _ =
        Machine.spawn_init m
          ~name:("perf-" ^ spec.Hare_workloads.Spec.name)
          (fun p _ ->
            spec.Hare_workloads.Spec.setup api p ~nprocs ~scale;
            let workers =
              match spec.Hare_workloads.Spec.mode with
              | Hare_workloads.Spec.Workers -> nprocs
              | Hare_workloads.Spec.Make -> 1
            in
            let pids =
              List.init workers (fun i ->
                  Posix.spawn p ~prog:"bench-worker" ~args:[ string_of_int i ])
            in
            List.fold_left
              (fun acc pid -> if Posix.waitpid p pid <> 0 then acc + 1 else acc)
              0 pids)
      in
      Machine.run m;
      ignore init;
      let cycles =
        Machine.seconds m
        *. float_of_int config.Config.costs.Hare_config.Costs.cycles_per_us
        *. 1e6
      in
      Printf.printf
        "%s: window=%d batch=%d extent=%d: %.0f simulated cycles, %d RPCs\n"
        spec.Hare_workloads.Spec.name window batch extent cycles
        (Machine.total_rpcs m);
      let perf = Machine.perf m in
      Hare_stats.Table.print
        ~headers:[ "perf counter"; "value" ]
        (List.map
           (fun (k, v) -> [ k; string_of_int v ])
           (Hare_stats.Perf.to_list perf));
      Format.printf "batch-size histogram: %a@." Hare_stats.Perf.pp_hist perf;
      Format.printf "mean batch %.2f, lease hit rate %.2f@."
        (Hare_stats.Perf.mean_batch perf)
        (Hare_stats.Perf.lease_hit_rate perf);
      let evictions =
        Array.fold_left
          (fun n c ->
            n + Hare_client.Dircache.evictions (Hare_client.Client.dircache c))
          0 (Machine.clients m)
      in
      Printf.printf "dircache evictions: %d\n" evictions;
      0

let perf_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCH" ~doc:"Benchmark name (see `hare_cli list`).")
  in
  let window_arg =
    Arg.(
      value & opt int 8
      & info [ "window" ] ~docv:"W" ~doc:"rpc_window (1 = synchronous).")
  in
  let batch_arg =
    Arg.(
      value & opt int 8
      & info [ "batch" ] ~docv:"B" ~doc:"batch_max (1 = one request per wakeup).")
  in
  let extent_arg =
    Arg.(
      value & opt int 8
      & info [ "extent" ] ~docv:"E" ~doc:"alloc_extent (1 = block-at-a-time).")
  in
  let dcap_arg =
    Arg.(
      value & opt int 0
      & info [ "dircache-capacity" ] ~docv:"N"
          ~doc:"Bound the client dircache (0 = unbounded).")
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:
         "Run one benchmark with the PR 2 pipelining knobs and print the \
          perf counters (window depth, batch histogram, lease hit rate).")
    Term.(
      const run_perf $ name_arg $ cores_arg $ nprocs_arg $ scale_arg
      $ window_arg $ batch_arg $ extent_arg $ dcap_arg)

(* ---------- trace / profile commands ------------------------------------ *)

module Trace = Hare_trace.Trace

(* Boot a machine with tracing on, run the whole workload (setup
   included), and hand back the machine. Shared by `trace` (span export)
   and `profile` (cycle attribution). *)
let run_traced ?(metrics = 0) name cores nprocs scale cap seed =
  match Hare_workloads.All.find name with
  | exception Not_found ->
      Printf.eprintf "unknown benchmark %S; try `hare_cli list`\n" name;
      Error 1
  | spec ->
      let module Machine = Hare.Machine in
      let module Posix = Hare.Posix in
      let module Api = Hare_api.Api in
      let config =
        {
          (Driver.default_config ~ncores:cores) with
          Config.exec_policy = spec.Hare_workloads.Spec.exec_policy;
          trace_enabled = true;
          trace_cap = cap;
          metrics_interval = metrics;
          seed = Int64.of_int seed;
        }
      in
      let m = Machine.boot config in
      let api = World.Hare_w.api m in
      let nprocs =
        match nprocs with
        | Some n -> n
        | None -> List.length (Config.app_cores config)
      in
      List.iter
        (fun (prog, body) -> api.Api.register_program prog body)
        (spec.Hare_workloads.Spec.programs api);
      api.Api.register_program "bench-worker" (fun p args ->
          let idx = match args with a :: _ -> int_of_string a | [] -> 0 in
          spec.Hare_workloads.Spec.worker api p ~idx ~nprocs ~scale;
          0);
      let init, _ =
        Machine.spawn_init m
          ~name:("trace-" ^ spec.Hare_workloads.Spec.name)
          (fun p _ ->
            spec.Hare_workloads.Spec.setup api p ~nprocs ~scale;
            let workers =
              match spec.Hare_workloads.Spec.mode with
              | Hare_workloads.Spec.Workers -> nprocs
              | Hare_workloads.Spec.Make -> 1
            in
            let pids =
              List.init workers (fun i ->
                  Posix.spawn p ~prog:"bench-worker" ~args:[ string_of_int i ])
            in
            List.fold_left
              (fun acc pid -> if Posix.waitpid p pid <> 0 then acc + 1 else acc)
              0 pids)
      in
      Machine.run m;
      ignore init;
      Ok (spec, m)

let cap_arg =
  Arg.(
    value & opt int 65536
    & info [ "trace-cap" ] ~docv:"N"
        ~doc:
          "Trace ring-buffer capacity in events; the oldest events are \
           dropped (and counted) beyond it. 0 = no span ring: the export \
           is a clean metadata-only artifact (never fails --strict).")

let seed_arg' =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"S"
        ~doc:"Simulation seed; same seed => byte-identical trace.")

(* Dropped ring events mean the export (or profile) is missing the
   oldest spans: shout on stderr so a truncated artifact is never
   mistaken for a complete one, and fail outright under --strict. *)
let dropped_verdict ~strict ~what tr =
  let d = Trace.dropped tr in
  if d = 0 then 0
  else begin
    Printf.eprintf
      "WARNING: %d trace event(s) dropped by ring rotation — this %s is \
       incomplete (raise --trace-cap)\n"
      d what;
    if strict then begin
      Printf.eprintf "--strict: failing on dropped events\n";
      1
    end
    else 0
  end

let strict_arg =
  flag "strict" "Exit 1 when any trace events were dropped by ring rotation."

let run_trace name out cores nprocs scale cap metrics seed strict =
  match run_traced ~metrics name cores nprocs scale cap seed with
  | Error rc -> rc
  | Ok (spec, m) -> (
      match Hare.Machine.trace m with
      | None ->
          prerr_endline "internal error: trace sink missing";
          1
      | Some tr ->
          let json = Trace.to_chrome_json tr in
          Out_channel.with_open_bin out (fun oc ->
              Out_channel.output_string oc json);
          Printf.printf
            "%s: %.6f simulated seconds; %d events on %d tracks (%d \
             dropped) -> %s\n"
            spec.Hare_workloads.Spec.name (Hare.Machine.seconds m)
            (List.length (Trace.events tr))
            (List.length (Trace.tracks tr))
            (Trace.dropped tr) out;
          if not (Trace.ring_enabled tr) then
            print_endline
              "span ring empty by request (--trace-cap 0): metadata-only \
               export"
          else
            print_endline
              "open in https://ui.perfetto.dev or chrome://tracing";
          dropped_verdict ~strict ~what:"export" tr)

let trace_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCH" ~doc:"Benchmark name (see `hare_cli list`).")
  in
  let out_arg =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Where to write the Chrome trace-event JSON.")
  in
  let metrics_arg =
    Arg.(
      value & opt int 0
      & info [ "metrics" ] ~docv:"CYCLES"
          ~doc:
            "Also sample the telemetry gauges every $(docv) simulated \
             cycles, mirrored as Perfetto counter tracks (metric:*) in \
             the export (0 = off).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one benchmark with span tracing on and export a \
          Perfetto-compatible (Chrome trace-event) JSON file: one track \
          per core plus a DRAM track, with counter tracks for CPU \
          busy, mailbox depth, cache misses and DRAM traffic (and, with \
          $(b,--metrics), the telemetry gauges).")
    Term.(
      const run_trace $ name_arg $ out_arg $ cores_arg $ nprocs_arg
      $ scale_arg $ cap_arg $ metrics_arg $ seed_arg' $ strict_arg)

let run_profile name cores nprocs scale cap seed strict =
  match run_traced name cores nprocs scale cap seed with
  | Error rc -> rc
  | Ok (spec, m) -> (
      match Hare.Machine.trace m with
      | None ->
          prerr_endline "internal error: trace sink missing";
          1
      | Some tr ->
          let rows = Trace.profile tr in
          let grand = ref 0L in
          let per_bucket = Array.make Trace.nbuckets 0L in
          List.iter
            (fun (r : Trace.row) ->
              grand := Int64.add !grand r.Trace.r_total;
              Array.iteri
                (fun i c -> per_bucket.(i) <- Int64.add per_bucket.(i) c)
                r.Trace.r_buckets)
            rows;
          Printf.printf "%s: %.6f simulated seconds, %Ld attributed cycles\n"
            spec.Hare_workloads.Spec.name (Hare.Machine.seconds m) !grand;
          Hare_stats.Table.print
            ~headers:
              ([ "op"; "count"; "cycles" ] @ Trace.bucket_names)
            (List.map
               (fun (r : Trace.row) ->
                 [ r.Trace.r_op; string_of_int r.Trace.r_count;
                   Int64.to_string r.Trace.r_total ]
                 @ Array.to_list (Array.map Int64.to_string r.Trace.r_buckets))
               rows
            @ [
                [ "TOTAL"; ""; Int64.to_string !grand ]
                @ Array.to_list (Array.map Int64.to_string per_bucket);
              ]);
          let bucket_sum =
            Array.fold_left Int64.add 0L per_bucket
          in
          Printf.printf "unattributed cycles: %Ld (of %Ld)\n"
            (Int64.sub !grand bucket_sum)
            !grand;
          let drop_rc = dropped_verdict ~strict ~what:"profile" tr in
          if Int64.sub !grand bucket_sum <> 0L then 1 else drop_rc)

let profile_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCH" ~doc:"Benchmark name (see `hare_cli list`).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run one benchmark with span tracing on and print where the \
          cycles went, per opcode: compute, send, queue-wait, dispatch, \
          cache and DRAM buckets that sum exactly to each op's elapsed \
          cycles.")
    Term.(
      const run_profile $ name_arg $ cores_arg $ nprocs_arg $ scale_arg
      $ cap_arg $ seed_arg' $ strict_arg)

(* ---------- metrics command --------------------------------------------- *)

module Metrics = Hare_metrics.Metrics
module Knee = Hare_metrics.Knee
module Blame = Hare_metrics.Blame

(* Run one benchmark with the PR 9 telemetry on — the gauge sampler on a
   fixed simulated-cycle grid plus tail-based span retention — and
   report the time series (per-gauge summary table, optional raw JSON
   dump), the saturation knee, and with --blame the per-class
   tail-latency forensics. *)
let run_metrics name cores split nprocs scale interval retain cap blame out
    seed =
  match Hare_workloads.All.find name with
  | exception Not_found ->
      Printf.eprintf "unknown benchmark %S; try `hare_cli list`\n" name;
      1
  | spec ->
      let module Machine = Hare.Machine in
      let module Posix = Hare.Posix in
      let module Api = Hare_api.Api in
      if interval <= 0 then begin
        Printf.eprintf "--interval must be positive\n";
        exit 1
      end;
      let config =
        let c = Driver.default_config ~ncores:cores in
        let c =
          match split with
          | Some s -> { c with Config.placement = Config.Split s }
          | None -> c
        in
        {
          c with
          Config.exec_policy = spec.Hare_workloads.Spec.exec_policy;
          trace_enabled = true;
          trace_cap = cap;
          trace_retain = retain;
          metrics_interval = interval;
          seed = Int64.of_int seed;
        }
      in
      let m = Machine.boot config in
      let api = World.Hare_w.api m in
      let nprocs =
        match nprocs with
        | Some n -> n
        | None -> List.length (Config.app_cores config)
      in
      List.iter
        (fun (prog, body) -> api.Api.register_program prog body)
        (spec.Hare_workloads.Spec.programs api);
      api.Api.register_program "bench-worker" (fun p args ->
          let idx = match args with a :: _ -> int_of_string a | [] -> 0 in
          spec.Hare_workloads.Spec.worker api p ~idx ~nprocs ~scale;
          0);
      let init, _ =
        Machine.spawn_init m
          ~name:("metrics-" ^ spec.Hare_workloads.Spec.name)
          (fun p _ ->
            spec.Hare_workloads.Spec.setup api p ~nprocs ~scale;
            let workers =
              match spec.Hare_workloads.Spec.mode with
              | Hare_workloads.Spec.Workers -> nprocs
              | Hare_workloads.Spec.Make -> 1
            in
            let pids =
              List.init workers (fun i ->
                  Posix.spawn p ~prog:"bench-worker" ~args:[ string_of_int i ])
            in
            List.fold_left
              (fun acc pid -> if Posix.waitpid p pid <> 0 then acc + 1 else acc)
              0 pids)
      in
      Machine.run m;
      ignore init;
      match Machine.metrics m with
      | None ->
          prerr_endline "internal error: metrics registry missing";
          1
      | Some mt ->
          Printf.printf
            "%s: %.6f simulated seconds; %d gauges sampled every %d cycles \
             (%d samples, %d overwritten)\n"
            spec.Hare_workloads.Spec.name (Machine.seconds m)
            (Metrics.ngauges mt) (Metrics.interval mt) (Metrics.samples mt)
            (Metrics.dropped mt);
          Hare_stats.Table.print
            ~headers:[ "gauge"; "n"; "min"; "max"; "mean"; "last" ]
            (List.map
               (fun (g : Metrics.summary) ->
                 [
                   g.Metrics.s_name;
                   string_of_int g.Metrics.s_n;
                   string_of_int g.Metrics.s_min;
                   string_of_int g.Metrics.s_max;
                   Printf.sprintf "%.1f" g.Metrics.s_mean;
                   string_of_int g.Metrics.s_last;
                 ])
               (Metrics.summaries mt));
          (match Machine.trace m with
          | Some tr -> (
              let spans =
                List.map
                  (fun (_, t0, dur) -> (Int64.to_int t0, Int64.to_int dur))
                  (Trace.root_spans tr)
              in
              match Knee.detect ~window:(8 * interval) spans with
              | Some k ->
                  Printf.printf
                    "knee: p99 left the flat regime at cycle %d (window %d: \
                     %Ld -> %Ld cycles over %d judged windows)\n"
                    k.Knee.k_at k.Knee.k_window k.Knee.k_before k.Knee.k_after
                    k.Knee.k_windows
              | None -> print_endline "knee: none (p99 stayed flat)")
          | None -> ());
          (if blame then
             match Machine.trace m with
             | None -> ()
             | Some tr -> (
                 match Blame.of_trace tr with
                 | [] ->
                     print_endline
                       "blame: nothing retained (is --retain positive and \
                        the run long enough?)"
                 | reports ->
                     print_newline ();
                     Hare_stats.Table.print
                       ~headers:
                         [ "class"; "n"; "p99"; "bucket"; "srv";
                           "qdepth mean/max"; "worst op"; "worst cycles" ]
                       (List.map
                          (fun (b : Blame.t) ->
                            [
                              b.Blame.b_class;
                              string_of_int b.Blame.b_n;
                              Int64.to_string b.Blame.b_p99;
                              Printf.sprintf "%s (%.0f%%)" b.Blame.b_bucket
                                (100. *. b.Blame.b_bucket_share);
                              (if b.Blame.b_srv < 0 then "-"
                               else
                                 Printf.sprintf "fs%d (%.0f%%)" b.Blame.b_srv
                                   (100. *. b.Blame.b_srv_share));
                              (if b.Blame.b_qdepth_max < 0 then "-"
                               else
                                 Printf.sprintf "%.1f/%d"
                                   b.Blame.b_qdepth_mean b.Blame.b_qdepth_max);
                              b.Blame.b_worst_op;
                              string_of_int b.Blame.b_worst_dur;
                            ])
                          reports);
                     (* Critical path of the slowest retained op overall:
                        the exact bucket decomposition of its cycles. *)
                     match Trace.retained tr with
                     | [] -> ()
                     | worst :: _ ->
                         Printf.printf
                           "\ncritical path of slowest op (%s, %d cycles):\n"
                           worst.Trace.rt_op worst.Trace.rt_dur;
                         List.iter
                           (fun (bucket, cy) ->
                             Printf.printf "  %-10s %10d  (%.0f%%)\n" bucket cy
                               (100. *. float_of_int cy
                               /. float_of_int (max 1 worst.Trace.rt_dur)))
                           (Blame.critical_path worst)));
          (match out with
          | None -> ()
          | Some file ->
              (* Raw time series as JSON: one [stamp, value] pair array
                 per gauge, on the sampling grid. *)
              let buf = Buffer.create 4096 in
              let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
              add "{\n";
              add "  \"schema\": \"hare-metrics/1\",\n";
              add "  \"interval\": %d,\n" (Metrics.interval mt);
              add "  \"samples\": %d,\n" (Metrics.samples mt);
              add "  \"dropped\": %d,\n" (Metrics.dropped mt);
              add "  \"series\": {\n";
              let series = Metrics.series mt in
              List.iteri
                (fun i (gname, points) ->
                  add "    \"%s\": [ " gname;
                  List.iteri
                    (fun j (ts, v) ->
                      add "%s[%d, %d]" (if j > 0 then ", " else "") ts v)
                    points;
                  add " ]%s\n"
                    (if i < List.length series - 1 then "," else ""))
                series;
              add "  }\n";
              add "}\n";
              Out_channel.with_open_bin file (fun oc ->
                  Out_channel.output_string oc (Buffer.contents buf));
              Printf.printf "wrote %s\n" file);
          0

let metrics_cmd =
  let name_arg =
    Arg.(
      value
      & pos 0 string "overload"
      & info [] ~docv:"BENCH"
          ~doc:"Benchmark name (see `hare_cli list`; default: overload).")
  in
  let interval_arg =
    Arg.(
      value & opt int 20_000
      & info [ "interval" ] ~docv:"CYCLES"
          ~doc:"Sampling grid in simulated cycles.")
  in
  let retain_arg =
    Arg.(
      value & opt int 32
      & info [ "retain" ] ~docv:"K"
          ~doc:
            "Keep the complete span trees of the $(docv) slowest ops per \
             latency class for the blame report (0 = off).")
  in
  let blame_flag =
    flag "blame"
      "Print the per-class tail-latency blame report (dominant bucket, \
       dominant server, queue depth at admission) and the slowest op's \
       critical path."
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Also dump the raw per-gauge time series as JSON.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run one benchmark with continuous time-series telemetry: gauges \
          (queue depths, credits, breakers, sheds, retries, cache hit \
          rate, live fibers, load imbalance) sampled on a simulated-cycle \
          grid, the saturation knee of the latency series, and with \
          $(b,--blame) the tail-latency forensics from retained span \
          trees. Sampling is zero-perturbation: the simulated clock is \
          bit-identical with telemetry on or off.")
    Term.(
      const run_metrics $ name_arg $ cores_arg $ split_arg $ nprocs_arg
      $ scale_arg $ interval_arg $ retain_arg $ cap_arg $ blame_flag $ out_arg
      $ seed_arg')

(* ---------- check command ----------------------------------------------- *)

(* Run workloads under the coherence sanitizer. Each workload runs twice
   — checker off, then checker on with the same seed — so the
   zero-perturbation contract is verified on every invocation: the two
   simulated clocks must be bit-identical. Exit code contract: 0 = all
   runs clean; 1 = the sanitizer recorded violations; 2 = the checker
   itself perturbed the simulation (a sanitizer bug). *)
let run_check name plan deadline retries seed cores nprocs scale window batch
    extent verbose =
  let module Machine = Hare.Machine in
  let module Posix = Hare.Posix in
  let module Api = Hare_api.Api in
  let module Check = Hare_check.Check in
  let module Sanity = Hare_stats.Sanity in
  let specs =
    if name = "all" then Some Hare_workloads.All.specs
    else
      match Hare_workloads.All.find name with
      | spec -> Some [ spec ]
      | exception Not_found -> None
  in
  match specs with
  | None ->
      Printf.eprintf "unknown benchmark %S; try `hare_cli list`\n" name;
      1
  | Some specs -> (
      match Hare_fault.Plan.parse plan with
      | Error msg ->
          Printf.eprintf "bad --plan: %s\n" msg;
          1
      | Ok _ ->
          let deadline =
            match deadline with
            | Some d -> d
            | None -> if plan = "" then 0 else 25_000
          in
          if plan <> "" && deadline <= 0 then (
            Printf.eprintf
              "a fault plan needs --deadline > 0: without timeouts clients \
               never retry a dropped message\n";
            exit 1);
          let run_one (spec : Hare_workloads.Spec.t) ~enabled =
            let config =
              {
                (Driver.default_config ~ncores:cores) with
                Config.exec_policy = spec.Hare_workloads.Spec.exec_policy;
                fault_plan = plan;
                rpc_deadline = deadline;
                rpc_retries = retries;
                rpc_window = window;
                batch_max = batch;
                alloc_extent = extent;
                check_enabled = enabled;
                seed = Int64.of_int seed;
              }
            in
            let m = Machine.boot config in
            let api = World.Hare_w.api m in
            let nprocs =
              match nprocs with
              | Some n -> n
              | None -> List.length (Config.app_cores config)
            in
            List.iter
              (fun (prog, body) -> api.Api.register_program prog body)
              (spec.Hare_workloads.Spec.programs api);
            api.Api.register_program "bench-worker" (fun p args ->
                let idx = match args with a :: _ -> int_of_string a | [] -> 0 in
                spec.Hare_workloads.Spec.worker api p ~idx ~nprocs ~scale;
                0);
            let init, _ =
              Machine.spawn_init m
                ~name:("check-" ^ spec.Hare_workloads.Spec.name)
                (fun p _ ->
                  spec.Hare_workloads.Spec.setup api p ~nprocs ~scale;
                  let workers =
                    match spec.Hare_workloads.Spec.mode with
                    | Hare_workloads.Spec.Workers -> nprocs
                    | Hare_workloads.Spec.Make -> 1
                  in
                  let pids =
                    List.init workers (fun i ->
                        Posix.spawn p ~prog:"bench-worker"
                          ~args:[ string_of_int i ])
                  in
                  List.fold_left
                    (fun acc pid ->
                      if Posix.waitpid p pid <> 0 then acc + 1 else acc)
                    0 pids)
            in
            Machine.run m;
            (m, Machine.exit_status m init)
          in
          let total = Sanity.create () in
          let perturbed = ref false in
          let recorded = ref [] in
          List.iter
            (fun (spec : Hare_workloads.Spec.t) ->
              let wname = spec.Hare_workloads.Spec.name in
              let off, _ = run_one spec ~enabled:false in
              let on, status = run_one spec ~enabled:true in
              (match status with
              | Some 0 -> ()
              | Some n -> Printf.printf "%s: %d worker(s) failed\n" wname n
              | None -> Printf.printf "%s: init never finished\n" wname);
              if Machine.now off <> Machine.now on then begin
                perturbed := true;
                Printf.printf
                  "%s: PERTURBED: %Ld cycles unchecked vs %Ld checked\n" wname
                  (Machine.now off) (Machine.now on)
              end
              else
                Printf.printf
                  "%s: %.6f simulated seconds, clock identical with checking \
                   on\n"
                  wname (Machine.seconds on);
              match Machine.check on with
              | None -> ()
              | Some chk ->
                  Sanity.merge ~into:total (Check.stats chk);
                  recorded := !recorded @ Check.violations chk)
            specs;
          Hare_stats.Table.print
            ~headers:[ "rule"; "violations" ]
            (List.map
               (fun (k, v) -> [ k; string_of_int v ])
               (Sanity.violations total));
          if verbose then
            Hare_stats.Table.print
              ~headers:[ "checker counter"; "value" ]
              (List.map
                 (fun (k, v) -> [ k; string_of_int v ])
                 (Sanity.to_list total));
          let shown = ref 0 in
          List.iter
            (fun v ->
              if !shown < 20 then begin
                Format.printf "%a@." Check.pp_violation v;
                incr shown
              end)
            !recorded;
          if List.length !recorded > 20 then
            Printf.printf "... and %d more\n" (List.length !recorded - 20);
          if !perturbed then begin
            print_endline "FAIL: the sanitizer perturbed the simulation";
            2
          end
          else if Sanity.total_violations total > 0 then begin
            print_endline "FAIL: coherence/protocol violations detected";
            1
          end
          else begin
            print_endline "OK: no violations, zero perturbation";
            0
          end)

let check_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCH"
          ~doc:"Benchmark name (see `hare_cli list`), or 'all'.")
  in
  let plan_arg =
    Arg.(
      value & opt string ""
      & info [ "plan" ] ~docv:"SPEC"
          ~doc:
            "Fault plan to check under, e.g. \
             'drop:fs:0.05;crash:1@200000+150000'. Empty runs fault-free.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline" ] ~docv:"CYCLES"
          ~doc:
            "First-attempt RPC deadline in cycles; defaults to 0 without a \
             plan, 25000 with one.")
  in
  let retries_arg =
    Arg.(
      value & opt int 12
      & info [ "retries" ] ~docv:"N"
          ~doc:"RPC attempts before giving up with EIO.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S"
          ~doc:"Simulation seed (both runs of each pair share it).")
  in
  let window_arg =
    Arg.(
      value & opt int 1
      & info [ "window" ] ~docv:"W" ~doc:"rpc_window (1 = synchronous).")
  in
  let batch_arg =
    Arg.(
      value & opt int 1
      & info [ "batch" ] ~docv:"B"
          ~doc:"batch_max (1 = one request per wakeup).")
  in
  let extent_arg =
    Arg.(
      value & opt int 1
      & info [ "extent" ] ~docv:"E" ~doc:"alloc_extent (1 = block-at-a-time).")
  in
  let verbose = flag "verbose" "Also print the checker's event counters." in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run benchmarks under the coherence sanitizer: vector-clock race \
          detection over the simulated caches plus Hare protocol lint \
          rules. Each workload runs twice (checker off/on) to prove the \
          checker is zero-perturbation. Exit 0: clean; 1: violations; 2: \
          the checker perturbed the simulation.")
    Term.(
      const run_check $ name_arg $ plan_arg $ deadline_arg $ retries_arg
      $ seed_arg $ cores_arg $ nprocs_arg $ scale_arg $ window_arg $ batch_arg
      $ extent_arg $ verbose)

(* ---------- list command ------------------------------------------------ *)

(* ---------- shard command ----------------------------------------------- *)

(* Run a workload on a Sharded machine and dump the placement ring: which
   physical server hosts which logical homes (and how much state), plus
   the migration counters a membership plan produced. *)
let run_shard name cores servers vnodes plan nprocs scale seed check =
  let module Machine = Hare.Machine in
  let module Posix = Hare.Posix in
  let module Api = Hare_api.Api in
  let module Place = Hare_place.Place in
  let module Server = Hare_server.Server in
  match Hare_workloads.All.find name with
  | exception Not_found ->
      Printf.eprintf "unknown benchmark %S; try `hare_cli list`\n" name;
      1
  | spec -> (
      let config =
        {
          (Driver.default_config ~ncores:cores) with
          Config.placement = Config.Sharded { servers; vnodes };
          shard_plan = plan;
          exec_policy = spec.Hare_workloads.Spec.exec_policy;
          check_enabled = check;
          seed = Int64.of_int seed;
        }
      in
      match Config.validate config with
      | Error msg ->
          Printf.eprintf "bad configuration: %s\n" msg;
          1
      | Ok () ->
          let m = Machine.boot config in
          let api = World.Hare_w.api m in
          let nprocs =
            match nprocs with
            | Some n -> n
            | None -> List.length (Config.app_cores config)
          in
          List.iter
            (fun (prog, body) -> api.Api.register_program prog body)
            (spec.Hare_workloads.Spec.programs api);
          api.Api.register_program "bench-worker" (fun p args ->
              let idx = match args with a :: _ -> int_of_string a | [] -> 0 in
              spec.Hare_workloads.Spec.worker api p ~idx ~nprocs ~scale;
              0);
          let init, _ =
            Machine.spawn_init m
              ~name:("shard-" ^ spec.Hare_workloads.Spec.name)
              (fun p _ ->
                spec.Hare_workloads.Spec.setup api p ~nprocs ~scale;
                let workers =
                  match spec.Hare_workloads.Spec.mode with
                  | Hare_workloads.Spec.Workers -> nprocs
                  | Hare_workloads.Spec.Make -> 1
                in
                let pids =
                  List.init workers (fun i ->
                      Posix.spawn p ~prog:"bench-worker"
                        ~args:[ string_of_int i ])
                in
                List.fold_left
                  (fun acc pid ->
                    if Posix.waitpid p pid <> 0 then acc + 1 else acc)
                  0 pids)
          in
          Machine.run m;
          (match Machine.exit_status m init with
          | Some 0 -> ()
          | Some n -> Printf.printf "%d worker(s) failed\n" n
          | None -> print_endline "init never finished");
          let place =
            match Machine.place m with
            | Some p -> p
            | None -> assert false
          in
          Printf.printf
            "ring: %d logical homes x %d vnodes over %d physical servers \
             (epoch %d)\n"
            (Place.nhomes place) (Place.vnodes place) (Place.nphys place)
            (Place.epoch place);
          Printf.printf
            "%.6f simulated seconds; load imbalance (max/mean ops) %.2f\n\n"
            (Machine.seconds m) (Machine.imbalance m);
          let loads = Machine.server_loads m in
          Hare_stats.Table.print
            ~headers:
              [ "srv"; "state"; "homes"; "inodes"; "dentries"; "ops";
                "peak-q"; "in"; "out"; "bounced" ]
            (Array.to_list (Machine.servers m)
            |> List.map (fun s ->
                   let sid = Server.sid s in
                   let ops, peak =
                     match List.assoc_opt sid
                             (List.map (fun (i, o, q) -> (i, (o, q))) loads)
                     with
                     | Some (o, q) -> (o, q)
                     | None -> (0, 0)
                   in
                   [
                     Printf.sprintf "fs%d" sid;
                     (if Place.active place sid then "active" else "retired");
                     String.concat ","
                       (List.map string_of_int (Server.hosted_homes s));
                     string_of_int (Server.inode_count s);
                     string_of_int (Server.dentry_count s);
                     string_of_int ops;
                     string_of_int peak;
                     string_of_int (Server.homes_migrated_in s);
                     string_of_int (Server.homes_migrated_out s);
                     string_of_int (Server.moved_rejects s);
                   ]));
          print_newline ();
          (* Vnode layout: each home's current route and its rendezvous
             weight there (the argmax over the active servers' points). *)
          Hare_stats.Table.print
            ~headers:[ "home"; "srv"; "weight" ]
            (List.init (Place.nhomes place) (fun h ->
                 let srv = Place.phys place h in
                 [
                   string_of_int h;
                   Printf.sprintf "fs%d" srv;
                   Printf.sprintf "%08x"
                     (Place.weight place ~home:h ~srv land 0xffffffff);
                 ]));
          Printf.printf
            "\nmigrations: %d moved, %d aborted; clients chased %d EMOVED \
             bounce(s)\n"
            (Place.migrations place) (Place.aborted place)
            (Machine.total_moved_retries m);
          (match Machine.check m with
          | None -> 0
          | Some chk ->
              let total =
                Hare_stats.Sanity.total_violations
                  (Hare_check.Check.stats chk)
              in
              if total > 0 then begin
                Printf.printf "sanitizer: %d violation(s)\n" total;
                1
              end
              else begin
                print_endline "sanitizer: clean";
                0
              end))

let shard_cmd =
  let name_arg =
    Arg.(
      value
      & pos 0 string "creates"
      & info [] ~docv:"BENCH" ~doc:"Benchmark to drive the ring (default: creates).")
  in
  let servers_arg =
    Arg.(
      value & opt int 4
      & info [ "servers" ] ~docv:"S" ~doc:"Logical file-server homes.")
  in
  let plan_arg =
    Arg.(
      value & opt string ""
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "Ring-membership plan: 'add@CYCLES' activates a spare physical \
             server, 'remove:SID@CYCLES' drains one; ';'-separated.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Simulation seed.")
  in
  let check_flag = flag "check" "Run with the coherence sanitizer attached." in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Run a benchmark under consistent-hash (Sharded) placement and dump \
          the ring: per-server home ownership, inode/dentry counts, load and \
          queue depth, the vnode layout, and migration counters. With \
          $(b,--plan), servers are added/removed mid-run and whole homes \
          migrate live between physical servers.")
    Term.(
      const run_shard $ name_arg $ cores_arg $ servers_arg $ vnodes_arg
      $ plan_arg $ nprocs_arg $ scale_arg $ seed_arg $ check_flag)

(* ---------- explore: systematic schedule exploration --------------------- *)

let run_explore list_only scenario strategy seed budget mutate replay =
  let module R = Hare_explore.Runner in
  let module S = Hare_explore.Scenario in
  if list_only then begin
    print_endline "scenarios:";
    List.iter
      (fun sc -> Printf.printf "  %-8s %s\n" sc.S.sc_name sc.S.sc_doc)
      S.all;
    print_endline "mutations (--mutate):";
    List.iter (fun m -> Printf.printf "  %s\n" m) S.mutations;
    0
  end
  else
    match S.find scenario with
    | exception Not_found ->
        Printf.eprintf
          "unknown scenario %S (hare_cli explore --list shows them)\n" scenario;
        2
    | sc -> (
        match mutate with
        | Some m when not (List.mem m S.mutations) ->
            Printf.eprintf
              "unknown mutation %S (hare_cli explore --list shows them)\n" m;
            2
        | _ ->
            let strategy =
              match replay with
              | Some csv ->
                  R.Replay
                    (String.split_on_char ',' csv
                    |> List.filter (fun s -> s <> "")
                    |> List.map int_of_string)
              | None -> (
                  match strategy with
                  | "dpor" -> R.Dpor
                  | "pct" -> R.Pct seed
                  | "rand" -> R.Rand seed
                  | "det" -> R.Deterministic
                  | s ->
                      raise
                        (Invalid_argument
                           ("unknown strategy " ^ s
                          ^ " (dpor, pct, rand, det)")))
            in
            let st = R.explore ~scenario:sc ?mutate ~strategy ~budget () in
            Printf.printf
              "%s strategy=%s%s: %d schedule(s), %d choice point(s), depth \
               %d, %d sleep-set prune(s)%s\n"
              sc.S.sc_name (R.strategy_name strategy)
              (match mutate with Some m -> " mutate=" ^ m | None -> "")
              st.R.schedules st.R.choice_points st.R.max_depth
              st.R.sleep_blocked
              (if st.R.complete then ", exhaustive" else "");
            List.iter
              (fun (v : R.violation) ->
                Printf.printf "VIOLATION [%s]\n%s\n" v.R.v_kind v.R.v_detail;
                Printf.printf "  reproduce: hare_cli explore %s%s --replay %s\n"
                  sc.S.sc_name
                  (match mutate with Some m -> " --mutate " ^ m | None -> "")
                  (match v.R.v_choices with
                  | [] -> "0"
                  | cs -> String.concat "," (List.map string_of_int cs)))
              st.R.violations;
            if st.R.violations = [] then begin
              print_endline "no violations";
              0
            end
            else 1)

let explore_cmd =
  let scenario_arg =
    Arg.(
      value
      & pos 0 string "collide"
      & info [] ~docv:"SCENARIO"
          ~doc:"Exploration scenario (see $(b,--list)).")
  in
  let strategy_arg =
    Arg.(
      value & opt string "dpor"
      & info [ "strategy" ] ~docv:"STRAT"
          ~doc:
            "Schedule strategy: $(b,dpor) (exhaustive, sleep-set reduced), \
             $(b,pct) (seeded random priorities), $(b,rand) (seeded uniform), \
             $(b,det) (the engine's deterministic order; one run).")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N" ~doc:"Seed for pct/rand strategies.")
  in
  let budget_arg =
    Arg.(
      value & opt int 500
      & info [ "budget" ] ~docv:"N"
          ~doc:"Maximum executions before giving up.")
  in
  let mutate_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutate" ] ~docv:"M"
          ~doc:"Run with a seeded protocol mutation switched on.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"CSV"
          ~doc:
            "Replay one schedule: comma-separated choice ordinals as printed \
             in a violation report (overrides $(b,--strategy)).")
  in
  let list_flag = flag "list" "List scenarios and mutations, then exit." in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Systematically explore same-cycle event orderings of a tiny \
          workload, checking every schedule with the coherence sanitizer and \
          a close-to-open linearizability oracle. Exit 0: clean; 1: \
          violation found (with a $(b,--replay) recipe); 2: bad arguments.")
    Term.(
      const run_explore $ list_flag $ scenario_arg $ strategy_arg $ seed_arg
      $ budget_arg $ mutate_arg $ replay_arg)

let run_list () =
  List.iter
    (fun (s : Hare_workloads.Spec.t) ->
      Printf.printf "%-14s (%s placement%s)\n" s.Hare_workloads.Spec.name
        (match s.Hare_workloads.Spec.exec_policy with
        | Config.Random_placement -> "random"
        | Config.Round_robin -> "round-robin")
        (if s.Hare_workloads.Spec.uses_dist then ", distributed dirs" else ""))
    Hare_workloads.All.specs;
  0

let list_cmd =
  Cmd.v
    (Cmd.info "list" ~doc:"List available benchmarks.")
    Term.(const run_list $ const ())

let main =
  Cmd.group
    (Cmd.info "hare_cli" ~version:"1.0"
       ~doc:
         "Hare, a file system for non-cache-coherent multicores, in \
          simulation: benchmarks and paper-figure reproduction.")
    [
      bench_cmd; fig_cmd; faults_cmd; overload_cmd; perf_cmd; trace_cmd;
      profile_cmd; metrics_cmd; check_cmd; shard_cmd; explore_cmd; list_cmd;
      shell_cmd;
    ]

let () = exit (Cmd.eval' main)
